"""Scan-centric reimplementations of the 22 TPC-H query templates.

Each factory takes a seeded ``numpy`` RNG and returns a concrete
:class:`~repro.engine.query.QuerySpec`.  The templates preserve what the
paper's mechanism cares about: which tables are scanned, over which
(date-clustered, hotspot-biased) ranges, with what predicate selectivity
and per-row CPU weight.  Join/sort work above the scans is folded into
``extra_units_per_row``, keeping every query's CPU:I/O balance close to
its TPC-H original (Q1 CPU-bound, Q6 I/O-bound, etc.).

Date-range parameters are drawn with a recency bias — the paper's
motivating observation is that analysts concentrate on the most recent
year or month of a warehouse, which is what creates overlapping scans.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.engine.expressions import col, lit
from repro.engine.operators import AggSpec
from repro.engine.query import QuerySpec, ScanStep
from repro.workloads.tpch_schema import DATE_RANGE_DAYS, YEAR_START

QueryFactory = Callable[[np.random.Generator], QuerySpec]

#: Recency-biased sampling weights for the seven data years.
_YEAR_WEIGHTS = np.array([0.04, 0.05, 0.07, 0.10, 0.16, 0.25, 0.33])
_YEARS = sorted(YEAR_START)


def _pick_year(rng: np.random.Generator) -> int:
    """Draw a year, biased toward the warehouse's most recent data."""
    return int(rng.choice(_YEARS, p=_YEAR_WEIGHTS))


def _year_range(year: int, days: float = 365.0) -> Tuple[float, float]:
    """Day-number range starting at ``year`` and spanning ``days``."""
    start = YEAR_START[year]
    return (start, min(start + days, DATE_RANGE_DAYS))


def _revenue():
    return col("l_extendedprice") * (lit(1.0) - col("l_discount"))


def _charge():
    return _revenue() * (lit(1.0) + col("l_tax"))


def q1(rng: np.random.Generator) -> QuerySpec:
    """Pricing summary report: near-full lineitem scan, heavy aggregation."""
    delta = float(rng.integers(60, 121))
    return QuerySpec(
        name="Q1",
        steps=(
            ScanStep(
                table="lineitem",
                cluster_range=(0.0, DATE_RANGE_DAYS - delta),
                group_by=("l_returnflag", "l_linestatus"),
                aggregates=(
                    AggSpec("sum_qty", "sum", col("l_quantity")),
                    AggSpec("sum_base_price", "sum", col("l_extendedprice")),
                    AggSpec("sum_disc_price", "sum", _revenue()),
                    AggSpec("sum_charge", "sum", _charge()),
                    AggSpec("avg_qty", "avg", col("l_quantity")),
                    AggSpec("avg_price", "avg", col("l_extendedprice")),
                    AggSpec("avg_disc", "avg", col("l_discount")),
                    AggSpec("count_order", "count"),
                ),
                # Q1's dominant cost in real engines is per-row decimal
                # arithmetic and expression evaluation; this weight makes
                # the template genuinely CPU-bound, as the paper requires
                # for its CPU-intensive staggered experiment.
                extra_units_per_row=60.0,
                label="lineitem",
            ),
        ),
    )


def q2(rng: np.random.Generator) -> QuerySpec:
    """Minimum-cost supplier: part + partsupp + supplier scans."""
    size = int(rng.integers(1, 51))
    return QuerySpec(
        name="Q2",
        steps=(
            ScanStep(
                table="part",
                predicate=col("p_size").eq(lit(size)),
                aggregates=(AggSpec("parts", "count"),),
                extra_units_per_row=2.0,
                label="part",
            ),
            ScanStep(
                table="partsupp",
                aggregates=(AggSpec("min_cost", "min", col("ps_supplycost")),),
                extra_units_per_row=4.0,
                label="partsupp",
            ),
            ScanStep(
                table="supplier",
                aggregates=(AggSpec("suppliers", "count"),),
                label="supplier",
            ),
        ),
    )


def q3(rng: np.random.Generator) -> QuerySpec:
    """Shipping priority: customer + orders + lineitem on a recent window."""
    year = _pick_year(rng)
    lo, hi = _year_range(year, days=120.0)
    segment = str(
        rng.choice(["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"])
    )
    return QuerySpec(
        name="Q3",
        steps=(
            ScanStep(
                table="customer",
                predicate=col("c_mktsegment").eq(lit(segment)),
                aggregates=(AggSpec("customers", "count"),),
                label="customer",
            ),
            ScanStep(
                table="orders",
                cluster_range=(lo, hi),
                aggregates=(AggSpec("orders", "count"),),
                extra_units_per_row=3.0,
                label="orders",
            ),
            ScanStep(
                table="lineitem",
                cluster_range=(lo, hi + 30.0),
                aggregates=(AggSpec("revenue", "sum", _revenue()),),
                extra_units_per_row=3.0,
                label="lineitem",
            ),
        ),
    )


def q4(rng: np.random.Generator) -> QuerySpec:
    """Order priority checking: one quarter of orders + lineitem probe."""
    year = _pick_year(rng)
    lo, hi = _year_range(year, days=92.0)
    return QuerySpec(
        name="Q4",
        steps=(
            ScanStep(
                table="orders",
                cluster_range=(lo, hi),
                group_by=("o_orderpriority",),
                aggregates=(AggSpec("order_count", "count"),),
                label="orders",
            ),
            ScanStep(
                table="lineitem",
                cluster_range=(lo, hi + 30.0),
                predicate=col("l_commitdate") < col("l_receiptdate"),
                aggregates=(AggSpec("late", "count"),),
                extra_units_per_row=2.0,
                label="lineitem",
            ),
        ),
    )


def q5(rng: np.random.Generator) -> QuerySpec:
    """Local supplier volume: one year across four tables."""
    year = _pick_year(rng)
    lo, hi = _year_range(year)
    return QuerySpec(
        name="Q5",
        steps=(
            ScanStep(
                table="customer",
                aggregates=(AggSpec("customers", "count"),),
                label="customer",
            ),
            ScanStep(
                table="orders",
                cluster_range=(lo, hi),
                aggregates=(AggSpec("orders", "count"),),
                extra_units_per_row=3.0,
                label="orders",
            ),
            ScanStep(
                table="lineitem",
                cluster_range=(lo, hi),
                aggregates=(AggSpec("revenue", "sum", _revenue()),),
                extra_units_per_row=5.0,
                label="lineitem",
            ),
            ScanStep(
                table="supplier",
                aggregates=(AggSpec("suppliers", "count"),),
                label="supplier",
            ),
        ),
    )


def q6(rng: np.random.Generator) -> QuerySpec:
    """Forecasting revenue change: the I/O-bound staple — one year of
    lineitem, a cheap predicate, a single aggregate."""
    year = _pick_year(rng)
    lo, hi = _year_range(year)
    discount = float(rng.uniform(0.02, 0.09))
    quantity = int(rng.integers(24, 26))
    return QuerySpec(
        name="Q6",
        steps=(
            ScanStep(
                table="lineitem",
                cluster_range=(lo, hi),
                predicate=(
                    col("l_discount").between(discount - 0.01, discount + 0.01)
                    & (col("l_quantity") < lit(quantity))
                ),
                aggregates=(
                    AggSpec("revenue", "sum", col("l_extendedprice") * col("l_discount")),
                ),
                label="lineitem",
            ),
        ),
    )


def q7(rng: np.random.Generator) -> QuerySpec:
    """Volume shipping: two years of lineitem plus dimension scans."""
    year = min(_pick_year(rng), 1997)
    lo, hi = _year_range(year, days=730.0)
    return QuerySpec(
        name="Q7",
        steps=(
            ScanStep(
                table="supplier",
                aggregates=(AggSpec("suppliers", "count"),),
                label="supplier",
            ),
            ScanStep(
                table="lineitem",
                cluster_range=(lo, hi),
                aggregates=(AggSpec("volume", "sum", _revenue()),),
                extra_units_per_row=4.0,
                label="lineitem",
            ),
            ScanStep(
                table="customer",
                aggregates=(AggSpec("customers", "count"),),
                extra_units_per_row=2.0,
                label="customer",
            ),
        ),
    )


def q8(rng: np.random.Generator) -> QuerySpec:
    """National market share: part + two years of orders and lineitem."""
    lo, hi = _year_range(1995, days=730.0)
    return QuerySpec(
        name="Q8",
        steps=(
            ScanStep(
                table="part",
                predicate=col("p_type").eq(lit("ECONOMY")),
                aggregates=(AggSpec("parts", "count"),),
                label="part",
            ),
            ScanStep(
                table="orders",
                cluster_range=(lo, hi),
                aggregates=(AggSpec("orders", "count"),),
                extra_units_per_row=3.0,
                label="orders",
            ),
            ScanStep(
                table="lineitem",
                cluster_range=(lo, hi),
                aggregates=(AggSpec("volume", "sum", _revenue()),),
                extra_units_per_row=5.0,
                label="lineitem",
            ),
        ),
    )


def q9(rng: np.random.Generator) -> QuerySpec:
    """Product type profit: full lineitem with heavy join work."""
    return QuerySpec(
        name="Q9",
        steps=(
            ScanStep(
                table="part",
                aggregates=(AggSpec("parts", "count"),),
                label="part",
            ),
            ScanStep(
                table="partsupp",
                aggregates=(AggSpec("avg_cost", "avg", col("ps_supplycost")),),
                extra_units_per_row=3.0,
                label="partsupp",
            ),
            ScanStep(
                table="lineitem",
                aggregates=(
                    AggSpec(
                        "profit",
                        "sum",
                        _revenue() - col("l_quantity") * lit(1.0),
                    ),
                ),
                extra_units_per_row=8.0,
                label="lineitem",
            ),
        ),
    )


def q10(rng: np.random.Generator) -> QuerySpec:
    """Returned items: one quarter, returnflag filter."""
    year = _pick_year(rng)
    lo, hi = _year_range(year, days=92.0)
    return QuerySpec(
        name="Q10",
        steps=(
            ScanStep(
                table="customer",
                aggregates=(AggSpec("customers", "count"),),
                label="customer",
            ),
            ScanStep(
                table="orders",
                cluster_range=(lo, hi),
                aggregates=(AggSpec("orders", "count"),),
                extra_units_per_row=2.0,
                label="orders",
            ),
            ScanStep(
                table="lineitem",
                cluster_range=(lo, hi + 90.0),
                predicate=col("l_returnflag").eq(lit("R")),
                aggregates=(AggSpec("revenue", "sum", _revenue()),),
                extra_units_per_row=3.0,
                label="lineitem",
            ),
        ),
    )


def q11(rng: np.random.Generator) -> QuerySpec:
    """Important stock identification: partsupp + supplier."""
    return QuerySpec(
        name="Q11",
        steps=(
            ScanStep(
                table="partsupp",
                aggregates=(
                    AggSpec(
                        "value",
                        "sum",
                        col("ps_supplycost") * col("ps_availqty"),
                    ),
                ),
                extra_units_per_row=3.0,
                label="partsupp",
            ),
            ScanStep(
                table="supplier",
                aggregates=(AggSpec("suppliers", "count"),),
                label="supplier",
            ),
        ),
    )


def q12(rng: np.random.Generator) -> QuerySpec:
    """Shipping modes: one year of lineitem with an IN predicate."""
    year = _pick_year(rng)
    lo, hi = _year_range(year)
    modes = [str(m) for m in rng.choice(
        ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"], size=2,
        replace=False)]
    return QuerySpec(
        name="Q12",
        steps=(
            ScanStep(
                table="lineitem",
                cluster_range=(lo, hi),
                predicate=col("l_shipmode").isin(modes)
                & (col("l_commitdate") < col("l_receiptdate")),
                group_by=("l_shipmode",),
                aggregates=(AggSpec("line_count", "count"),),
                extra_units_per_row=2.0,
                label="lineitem",
            ),
        ),
    )


def q13(rng: np.random.Generator) -> QuerySpec:
    """Customer distribution: full customer and orders scans."""
    return QuerySpec(
        name="Q13",
        steps=(
            ScanStep(
                table="customer",
                aggregates=(AggSpec("customers", "count"),),
                extra_units_per_row=3.0,
                label="customer",
            ),
            ScanStep(
                table="orders",
                group_by=("o_orderstatus",),
                aggregates=(AggSpec("orders", "count"),),
                extra_units_per_row=4.0,
                label="orders",
            ),
        ),
    )


def q14(rng: np.random.Generator) -> QuerySpec:
    """Promotion effect: one month of lineitem + part."""
    year = _pick_year(rng)
    lo, hi = _year_range(year, days=30.0)
    return QuerySpec(
        name="Q14",
        steps=(
            ScanStep(
                table="lineitem",
                cluster_range=(lo, hi),
                aggregates=(AggSpec("revenue", "sum", _revenue()),),
                extra_units_per_row=3.0,
                label="lineitem",
            ),
            ScanStep(
                table="part",
                predicate=col("p_type").eq(lit("PROMO")),
                aggregates=(AggSpec("promo_parts", "count"),),
                label="part",
            ),
        ),
    )


def q15(rng: np.random.Generator) -> QuerySpec:
    """Top supplier: one quarter of lineitem + supplier."""
    year = _pick_year(rng)
    lo, hi = _year_range(year, days=92.0)
    return QuerySpec(
        name="Q15",
        steps=(
            ScanStep(
                table="lineitem",
                cluster_range=(lo, hi),
                aggregates=(AggSpec("revenue", "sum", _revenue()),),
                extra_units_per_row=2.0,
                label="lineitem",
            ),
            ScanStep(
                table="supplier",
                aggregates=(AggSpec("max_bal", "max", col("s_acctbal")),),
                label="supplier",
            ),
        ),
    )


def q16(rng: np.random.Generator) -> QuerySpec:
    """Parts/supplier relationship: partsupp + part with filters."""
    size = int(rng.integers(1, 46))
    return QuerySpec(
        name="Q16",
        steps=(
            ScanStep(
                table="partsupp",
                aggregates=(AggSpec("pairs", "count"),),
                extra_units_per_row=2.0,
                label="partsupp",
            ),
            ScanStep(
                table="part",
                predicate=(col("p_size") >= lit(size)) & (col("p_size") < lit(size + 5)),
                group_by=("p_brand",),
                aggregates=(AggSpec("parts", "count"),),
                label="part",
            ),
        ),
    )


def q17(rng: np.random.Generator) -> QuerySpec:
    """Small-quantity-order revenue: full lineitem + part."""
    return QuerySpec(
        name="Q17",
        steps=(
            ScanStep(
                table="part",
                predicate=col("p_container").eq(lit("MED BOX")),
                aggregates=(AggSpec("parts", "count"),),
                label="part",
            ),
            ScanStep(
                table="lineitem",
                predicate=col("l_quantity") < lit(10),
                aggregates=(AggSpec("avg_qty", "avg", col("l_quantity")),
                            AggSpec("revenue", "sum", col("l_extendedprice"))),
                extra_units_per_row=4.0,
                label="lineitem",
            ),
        ),
    )


def q18(rng: np.random.Generator) -> QuerySpec:
    """Large volume customers: full lineitem + orders + customer, heavy."""
    return QuerySpec(
        name="Q18",
        steps=(
            ScanStep(
                table="lineitem",
                group_by=("l_returnflag",),
                aggregates=(AggSpec("sum_qty", "sum", col("l_quantity")),),
                extra_units_per_row=6.0,
                label="lineitem",
            ),
            ScanStep(
                table="orders",
                aggregates=(AggSpec("max_price", "max", col("o_totalprice")),),
                extra_units_per_row=3.0,
                label="orders",
            ),
            ScanStep(
                table="customer",
                aggregates=(AggSpec("customers", "count"),),
                label="customer",
            ),
        ),
    )


def q19(rng: np.random.Generator) -> QuerySpec:
    """Discounted revenue: one year with an expensive disjunctive predicate."""
    year = _pick_year(rng)
    lo, hi = _year_range(year)
    return QuerySpec(
        name="Q19",
        steps=(
            ScanStep(
                table="lineitem",
                cluster_range=(lo, hi),
                predicate=(
                    (col("l_quantity").between(1, 11)
                     & col("l_shipmode").isin(["AIR", "REG AIR"]))
                    | (col("l_quantity").between(10, 20)
                       & col("l_shipinstruct").eq(lit("DELIVER IN PERSON")))
                    | (col("l_quantity").between(20, 30)
                       & col("l_returnflag").eq(lit("N")))
                ),
                aggregates=(AggSpec("revenue", "sum", _revenue()),),
                extra_units_per_row=3.0,
                label="lineitem",
            ),
        ),
    )


def q20(rng: np.random.Generator) -> QuerySpec:
    """Potential part promotion: partsupp + one year of lineitem + supplier."""
    year = _pick_year(rng)
    lo, hi = _year_range(year)
    return QuerySpec(
        name="Q20",
        steps=(
            ScanStep(
                table="partsupp",
                aggregates=(AggSpec("pairs", "count"),),
                label="partsupp",
            ),
            ScanStep(
                table="lineitem",
                cluster_range=(lo, hi),
                aggregates=(AggSpec("sum_qty", "sum", col("l_quantity")),),
                extra_units_per_row=3.0,
                label="lineitem",
            ),
            ScanStep(
                table="supplier",
                aggregates=(AggSpec("suppliers", "count"),),
                label="supplier",
            ),
        ),
    )


def q21(rng: np.random.Generator) -> QuerySpec:
    """Suppliers who kept orders waiting: lineitem scanned TWICE (the
    original's self-join), plus orders — the query the paper's evaluation
    singles out as benefiting most from scan sharing."""
    return QuerySpec(
        name="Q21",
        steps=(
            ScanStep(
                table="supplier",
                aggregates=(AggSpec("suppliers", "count"),),
                label="supplier",
            ),
            ScanStep(
                table="lineitem",
                predicate=col("l_receiptdate") > col("l_commitdate"),
                aggregates=(AggSpec("late_lines", "count"),),
                extra_units_per_row=4.0,
                label="lineitem-1",
            ),
            ScanStep(
                table="lineitem",
                aggregates=(AggSpec("all_lines", "count"),),
                extra_units_per_row=4.0,
                label="lineitem-2",
            ),
            ScanStep(
                table="orders",
                predicate=col("o_orderstatus").eq(lit("F")),
                aggregates=(AggSpec("orders", "count"),),
                label="orders",
            ),
        ),
    )


def q22(rng: np.random.Generator) -> QuerySpec:
    """Global sales opportunity: customer + a slice of orders."""
    return QuerySpec(
        name="Q22",
        steps=(
            ScanStep(
                table="customer",
                predicate=col("c_acctbal") > lit(0.0),
                aggregates=(AggSpec("avg_bal", "avg", col("c_acctbal")),),
                label="customer",
            ),
            ScanStep(
                table="orders",
                fraction=(0.0, 0.25),
                aggregates=(AggSpec("orders", "count"),),
                label="orders",
            ),
        ),
    )


#: All query factories, keyed by template name.
QUERY_FACTORIES: Dict[str, QueryFactory] = {
    "Q1": q1, "Q2": q2, "Q3": q3, "Q4": q4, "Q5": q5, "Q6": q6, "Q7": q7,
    "Q8": q8, "Q9": q9, "Q10": q10, "Q11": q11, "Q12": q12, "Q13": q13,
    "Q14": q14, "Q15": q15, "Q16": q16, "Q17": q17, "Q18": q18, "Q19": q19,
    "Q20": q20, "Q21": q21, "Q22": q22,
}


def ag1(rng: np.random.Generator) -> QuerySpec:
    """Q1-shaped pricing summary under a frame budget.

    Same scan and aggregate shape as :func:`q1`, but the aggregation
    negotiates a bufferpool reservation (auto-sized by the planner) and
    spills under pressure.  Group cardinality is tiny (six groups), so
    this template only spills when the pool claws its frames back — the
    clean-run digest matches the operator-memory overhead, not temp I/O.
    """
    delta = float(rng.integers(60, 121))
    return QuerySpec(
        name="AG1",
        steps=(
            ScanStep(
                table="lineitem",
                cluster_range=(0.0, DATE_RANGE_DAYS - delta),
                group_by=("l_returnflag", "l_linestatus"),
                aggregates=(
                    AggSpec("sum_qty", "sum", col("l_quantity")),
                    AggSpec("sum_base_price", "sum", col("l_extendedprice")),
                    AggSpec("avg_disc", "avg", col("l_discount")),
                    AggSpec("count_order", "count"),
                ),
                extra_units_per_row=40.0,
                agg_budget_pages=-1,
                label="lineitem",
            ),
        ),
    )


def ag18(rng: np.random.Generator) -> QuerySpec:
    """Q18-shaped high-cardinality grouping that always spills.

    Grouping lineitem on ``l_orderkey`` (uniform over six million keys)
    produces tens of thousands of groups at any scale — far beyond what
    an auto budget of a quarter of the pool holds — so this template
    demonstrably exercises the spill path on every run.
    """
    year = _pick_year(rng)
    lo, hi = _year_range(year, days=540.0)
    return QuerySpec(
        name="AG18",
        steps=(
            ScanStep(
                table="lineitem",
                cluster_range=(lo, hi),
                group_by=("l_orderkey",),
                aggregates=(
                    AggSpec("sum_qty", "sum", col("l_quantity")),
                    AggSpec("lines", "count"),
                ),
                extra_units_per_row=8.0,
                agg_budget_pages=-1,
                label="lineitem",
            ),
            ScanStep(
                table="orders",
                aggregates=(AggSpec("max_price", "max", col("o_totalprice")),),
                extra_units_per_row=3.0,
                label="orders",
            ),
        ),
    )


def mj1(rng: np.random.Generator) -> QuerySpec:
    """Multibuffer hash join: part ⋈ lineitem on the part key.

    The build side hashes every part key under a deliberately small
    frame budget; the probe side re-scans lineitem once per multibuffer
    chunk when the build table outgrew the grant.  ``p_partkey`` is a
    dense sequence and ``l_partkey`` samples a wider domain, so matches
    are plentiful without being total.
    """
    budget = int(rng.integers(6, 13))
    return QuerySpec(
        name="MJ1",
        steps=(
            ScanStep(
                table="part",
                join_build_key="p_partkey",
                join_budget_pages=budget,
                label="build-part",
            ),
            ScanStep(
                table="lineitem",
                join_probe_key="l_partkey",
                label="probe-lineitem",
            ),
        ),
    )


def mj18(rng: np.random.Generator) -> QuerySpec:
    """Q18-shaped join: orders build side, lineitem probe side."""
    year = _pick_year(rng)
    lo, hi = _year_range(year, days=720.0)
    return QuerySpec(
        name="MJ18",
        steps=(
            ScanStep(
                table="orders",
                join_build_key="o_orderkey",
                join_budget_pages=-1,
                label="build-orders",
            ),
            ScanStep(
                table="lineitem",
                cluster_range=(lo, hi),
                join_probe_key="l_orderkey",
                label="probe-lineitem",
            ),
        ),
    )


#: Memory-budgeted templates.  Kept OUT of :data:`QUERY_FACTORIES` on
#: purpose: the default TPC-H stream composition (and therefore every
#: pre-existing experiment digest) is derived from that dict's keys, so
#: these are only reachable by explicit name.
BUDGETED_QUERY_FACTORIES: Dict[str, QueryFactory] = {
    "AG1": ag1, "AG18": ag18, "MJ1": mj1, "MJ18": mj18,
}


def make_query(name: str, rng: Optional[np.random.Generator] = None) -> QuerySpec:
    """Instantiate one template by name with a seeded RNG."""
    factory = QUERY_FACTORIES.get(name) or BUDGETED_QUERY_FACTORIES.get(name)
    if factory is None:
        known = sorted(QUERY_FACTORIES) + sorted(BUDGETED_QUERY_FACTORIES)
        raise KeyError(f"unknown query {name!r}; known: {known}")
    return factory(rng or np.random.default_rng(0))
