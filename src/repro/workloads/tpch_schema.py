"""The scaled TPC-H-shaped schema.

Dates are day numbers: 0 = 1992-01-01; the data spans seven years
(≈ 2557 days), matching TPC-H's date range.  ``lineitem`` is clustered
on ``l_shipdate`` and ``orders`` on ``o_orderdate`` — the physical
organization that turns the benchmark's date-range predicates into
contiguous page-range scans, which is precisely the workload whose
buffer locality the paper improves.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.engine.database import Database, SystemConfig
from repro.storage.schema import ColumnSpec, TableSchema

#: Total days in the TPC-H date range (1992-01-01 .. 1998-12-31).
DATE_RANGE_DAYS = 2557.0

#: First day-number of each calendar year in the dataset.
YEAR_START: Dict[int, float] = {
    1992: 0.0,
    1993: 366.0,
    1994: 731.0,
    1995: 1096.0,
    1996: 1461.0,
    1997: 1827.0,
    1998: 2192.0,
}

#: Page counts at scale 1.0 (the "100 GB" database scaled ~1000×).
TPCH_BASE_PAGES: Dict[str, int] = {
    "lineitem": 1600,
    "orders": 400,
    "partsupp": 320,
    "part": 120,
    "customer": 120,
    "supplier": 24,
    "nation": 2,
}


def _date(kind_low: float = 0.0, kind_high: float = DATE_RANGE_DAYS) -> tuple:
    return kind_low, kind_high


def tpch_schemas(rows_per_page: int = 100) -> Dict[str, TableSchema]:
    """All table schemas, keyed by table name."""
    date_lo, date_hi = _date()
    return {
        "lineitem": TableSchema(
            name="lineitem",
            rows_per_page=rows_per_page,
            columns=(
                ColumnSpec("l_orderkey", "int_uniform", 1, 6_000_000),
                ColumnSpec("l_partkey", "int_uniform", 1, 200_000),
                ColumnSpec("l_suppkey", "int_uniform", 1, 10_000),
                ColumnSpec("l_quantity", "int_uniform", 1, 50),
                ColumnSpec("l_extendedprice", "float_uniform", 900.0, 105_000.0),
                ColumnSpec("l_discount", "float_uniform", 0.0, 0.10),
                ColumnSpec("l_tax", "float_uniform", 0.0, 0.08),
                ColumnSpec("l_returnflag", "choice", categories=("A", "N", "R")),
                ColumnSpec("l_linestatus", "choice", categories=("O", "F")),
                ColumnSpec("l_shipdate", "clustered", date_lo, date_hi),
                ColumnSpec("l_commitdate", "float_uniform", date_lo, date_hi),
                ColumnSpec("l_receiptdate", "float_uniform", date_lo, date_hi),
                ColumnSpec(
                    "l_shipmode",
                    "choice",
                    categories=("AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"),
                ),
                ColumnSpec(
                    "l_shipinstruct",
                    "choice",
                    categories=(
                        "COLLECT COD",
                        "DELIVER IN PERSON",
                        "NONE",
                        "TAKE BACK RETURN",
                    ),
                ),
            ),
        ),
        "orders": TableSchema(
            name="orders",
            rows_per_page=rows_per_page,
            columns=(
                ColumnSpec("o_orderkey", "sequence"),
                ColumnSpec("o_custkey", "int_uniform", 1, 150_000),
                ColumnSpec("o_orderstatus", "choice", categories=("F", "O", "P")),
                ColumnSpec("o_totalprice", "float_uniform", 850.0, 560_000.0),
                ColumnSpec("o_orderdate", "clustered", date_lo, date_hi),
                ColumnSpec(
                    "o_orderpriority",
                    "choice",
                    categories=("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                                "5-LOW"),
                ),
                ColumnSpec("o_shippriority", "int_uniform", 0, 1),
            ),
        ),
        "partsupp": TableSchema(
            name="partsupp",
            rows_per_page=rows_per_page,
            columns=(
                ColumnSpec("ps_partkey", "int_uniform", 1, 200_000),
                ColumnSpec("ps_suppkey", "int_uniform", 1, 10_000),
                ColumnSpec("ps_availqty", "int_uniform", 1, 9_999),
                ColumnSpec("ps_supplycost", "float_uniform", 1.0, 1_000.0),
            ),
        ),
        "part": TableSchema(
            name="part",
            rows_per_page=rows_per_page,
            columns=(
                ColumnSpec("p_partkey", "sequence"),
                ColumnSpec(
                    "p_brand",
                    "choice",
                    categories=tuple(f"Brand#{i}{j}" for i in range(1, 6)
                                     for j in range(1, 6)),
                ),
                ColumnSpec(
                    "p_type",
                    "choice",
                    categories=("ECONOMY", "LARGE", "MEDIUM", "PROMO", "SMALL",
                                "STANDARD"),
                ),
                ColumnSpec("p_size", "int_uniform", 1, 50),
                ColumnSpec(
                    "p_container",
                    "choice",
                    categories=("SM CASE", "SM BOX", "MED BAG", "MED BOX",
                                "LG CASE", "LG BOX", "JUMBO PKG", "WRAP JAR"),
                ),
                ColumnSpec("p_retailprice", "float_uniform", 900.0, 2_000.0),
            ),
        ),
        "customer": TableSchema(
            name="customer",
            rows_per_page=rows_per_page,
            columns=(
                ColumnSpec("c_custkey", "sequence"),
                ColumnSpec("c_nationkey", "int_uniform", 0, 24),
                ColumnSpec("c_acctbal", "float_uniform", -999.99, 9_999.99),
                ColumnSpec(
                    "c_mktsegment",
                    "choice",
                    categories=("AUTOMOBILE", "BUILDING", "FURNITURE",
                                "HOUSEHOLD", "MACHINERY"),
                ),
            ),
        ),
        "supplier": TableSchema(
            name="supplier",
            rows_per_page=rows_per_page,
            columns=(
                ColumnSpec("s_suppkey", "sequence"),
                ColumnSpec("s_nationkey", "int_uniform", 0, 24),
                ColumnSpec("s_acctbal", "float_uniform", -999.99, 9_999.99),
            ),
        ),
        "nation": TableSchema(
            name="nation",
            rows_per_page=rows_per_page,
            columns=(
                ColumnSpec("n_nationkey", "sequence"),
                ColumnSpec("n_regionkey", "int_uniform", 0, 4),
            ),
        ),
    }


def make_tpch_database(
    config: Optional[SystemConfig] = None, scale: float = 1.0,
    rows_per_page: int = 100,
) -> Database:
    """Build and open a database holding the scaled TPC-H tables.

    ``scale`` multiplies every table's page count (minimum one extent per
    table), so tests can run at scale 0.1 while benchmarks use 1.0.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    db = Database(config)
    schemas = tpch_schemas(rows_per_page=rows_per_page)
    for name, base_pages in TPCH_BASE_PAGES.items():
        n_pages = max(db.config.extent_size, int(base_pages * scale))
        db.create_table(schemas[name], n_pages=n_pages)
    return db.open()
