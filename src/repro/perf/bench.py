"""Microbenchmarks over the simulation hot paths, with a regression gate.

Four paths dominate every experiment's wall-clock (see the "Performance"
section of ``docs/architecture.md``):

* **fix-hit** — pinning a resident page (:meth:`BufferPool.try_fix`);
* **fix-miss** — the full miss path through prefetch planning, the disk
  model, and in-flight completion;
* **dispatch** — one trip around the ``Simulator.run`` event loop;
* **staggered-Q6** — the end-to-end E2 experiment, executed through the
  same :func:`repro.experiments.runner.execute_task` the CLI uses.

``run_benchmarks`` measures all of them plus a *calibration spin loop* —
a fixed chunk of pure-Python work whose throughput proxies the machine's
single-core interpreter speed.  Every metric is stored both raw and
normalized against the calibration rate, so a committed baseline from
one machine can gate CI runs on another: a 20 % drop in *normalized*
throughput means the code got slower, not the hardware.

The JSON artifact (``BENCH_kernel.json`` at the repo root) is written by
``python -m repro bench --out ...`` and compared by ``--check``.
"""

from __future__ import annotations

import json
import platform
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

#: Bump when the JSON layout changes incompatibly.
SCHEMA_VERSION = 1

#: Iteration counts: full mode is the committed-baseline configuration,
#: quick mode is the CI lane (same workloads, fewer repetitions — the
#: normalized per-op metrics are what get compared, so counts may differ).
_FULL = {"repeats": 5, "fix_iters": 30_000, "dispatch_iters": 50_000,
         "miss_pages": 4_096, "e2e_repeats": 3, "striped_pages": 8_192,
         "soak_repeats": 2, "soak_scale": 0.25, "soak_streams": 6}
_QUICK = {"repeats": 2, "fix_iters": 10_000, "dispatch_iters": 20_000,
          "miss_pages": 1_024, "e2e_repeats": 2, "striped_pages": 2_048,
          "soak_repeats": 1, "soak_scale": 0.1, "soak_streams": 4}

_CALIBRATION_LOOPS = 200_000


# ----------------------------------------------------------------------
# Calibration
# ----------------------------------------------------------------------


def _spin(n: int) -> int:
    """A fixed chunk of branchy pure-Python work (the machine yardstick)."""
    acc = 0
    for i in range(n):
        acc += i & 7
    return acc


def calibrate(repeats: int = 3) -> float:
    """Spin-loop iterations per second on this machine (best of ``repeats``)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _spin(_CALIBRATION_LOOPS)
        best = min(best, time.perf_counter() - start)
    return _CALIBRATION_LOOPS / best


# ----------------------------------------------------------------------
# Microbenchmark bodies
# ----------------------------------------------------------------------


def _fresh_pool(n_pages: int = 64, capacity: int = 96) -> Tuple[object, object]:
    """A simulator + pool with ``n_pages`` pages already resident."""
    from repro.buffer.pool import BufferPool
    from repro.disk.device import Disk
    from repro.disk.geometry import DiskGeometry
    from repro.sim.kernel import Simulator

    sim = Simulator()
    disk = Disk(sim, DiskGeometry(total_pages=max(4096, n_pages)))
    pool = BufferPool(sim, disk, capacity=capacity,
                      address_of=lambda key: key.page_no)

    def preload(sim):
        for page_no in range(n_pages):
            yield from pool.fix(pool_key(page_no))
            pool.unfix(pool_key(page_no))

    sim.spawn(preload(sim))
    sim.run()
    return sim, pool


def pool_key(page_no: int):
    from repro.buffer.page import PageKey

    return PageKey(0, page_no)


#: Pages per prefetch extent in the fix benchmarks (matches the storage
#: layer's default extent size).
_EXTENT = 8


def bench_fix_hit(iterations: int) -> float:
    """Ops/sec of a hit pin the way the batched scans now do it:
    per-extent cached keys + ``try_fix`` + ``unfix``."""
    _sim, pool = _fresh_pool()
    extent_keys = [pool_key(page) for page in range(_EXTENT)]
    try_fix = pool.try_fix
    unfix = pool.unfix
    start = time.perf_counter()
    for i in range(iterations):
        key = extent_keys[i % _EXTENT]
        frame = try_fix(key)
        assert frame is not None
        unfix(key)
    elapsed = time.perf_counter() - start
    return iterations / elapsed


def bench_fix_hit_generator(iterations: int) -> float:
    """Ops/sec of the same hit workload through the pre-PR per-page path.

    Before this fast path existed, every page touch — hit or not — paid
    for a fresh page-key, a fresh prefetch-extent key list, and a
    generator frame driven through ``yield from``.  That is what this
    measures; the ratio against :func:`bench_fix_hit` is the fast-path
    speedup the regression gate holds at >= 3x.
    """
    from repro.buffer.page import PageKey

    _sim, pool = _fresh_pool()
    fix = pool.fix
    unfix = pool.unfix
    start = time.perf_counter()
    for i in range(iterations):
        page_no = i % _EXTENT
        key = PageKey(0, page_no)
        prefetch = [PageKey(0, page) for page in range(_EXTENT)]
        gen = fix(key, prefetch=prefetch)
        try:
            next(gen)
            raise AssertionError("hit path must not yield")
        except StopIteration as stop:
            frame = stop.value
        assert frame is not None
        unfix(key)
    elapsed = time.perf_counter() - start
    return iterations / elapsed


def bench_fix_miss(pages: int) -> float:
    """Pages/sec through the full miss path (prefetch + disk + admit)."""
    from repro.buffer.pool import BufferPool
    from repro.disk.device import Disk
    from repro.disk.geometry import DiskGeometry
    from repro.sim.kernel import Simulator

    sim = Simulator()
    disk = Disk(sim, DiskGeometry(total_pages=max(4096, pages)))
    pool = BufferPool(sim, disk, capacity=64,
                      address_of=lambda key: key.page_no)
    extent = 8

    def scan(sim):
        for page_no in range(pages):
            key = pool_key(page_no)
            first = (page_no // extent) * extent
            prefetch = [pool_key(p) for p in range(first, first + extent)]
            frame = pool.try_fix(key)
            if frame is None:
                frame = yield from pool.fix(key, prefetch=prefetch)
            pool.unfix(key)

    start = time.perf_counter()
    sim.spawn(scan(sim))
    sim.run()
    elapsed = time.perf_counter() - start
    return pages / elapsed


def bench_push_many(iterations: int) -> float:
    """Callbacks/sec through the bulk zero-delay scheduling path.

    ``schedule_many(0.0, ...)`` is what every multi-waiter event trigger
    pays: one time-routing check plus a single ``deque.extend`` onto the
    ready slab — no entry tuples, no sequence numbers, no heap sifts.
    """
    from repro.sim.kernel import Simulator

    batch = 64
    sim = Simulator()
    callbacks = [(lambda: None)] * batch
    schedule_many = sim.schedule_many
    n_batches = max(iterations // batch, 1)
    start = time.perf_counter()
    for _ in range(n_batches):
        schedule_many(0.0, callbacks)
    elapsed = time.perf_counter() - start
    sim.run()  # untimed drain; only the push side is under measurement
    return (n_batches * batch) / elapsed


def bench_fix_many(iterations: int) -> float:
    """Pins/sec of a whole resident extent through ``try_fix_many``.

    The batch entry point hoists the stats/tracer/clock lookups out of
    the per-page loop; this measures the resulting per-pin cost against
    :func:`bench_fix_hit`'s one-call-per-page baseline.
    """
    _sim, pool = _fresh_pool()
    keys = [pool_key(page) for page in range(_EXTENT)]
    try_fix_many = pool.try_fix_many
    unfix = pool.unfix
    n_batches = max(iterations // _EXTENT, 1)
    start = time.perf_counter()
    for _ in range(n_batches):
        frames = try_fix_many(keys)
        for key in keys:
            unfix(key)
    elapsed = time.perf_counter() - start
    assert all(frame is not None for frame in frames)
    return (n_batches * _EXTENT) / elapsed


def bench_soak_multi_device(repeats: int, scale: float, streams: int) -> float:
    """Best wall-clock seconds for an ST-SCALING-shaped soak run.

    The heaviest sustained workload in the suite: the push pipeline
    fanning one shared scan out to ``streams`` consumers over 1, 2, and 4
    striped devices, executed through the real experiment runner.  This
    is the benchmark the batched dispatch loop and slot-indexed frame
    table exist for; ``make bench-soak`` runs it in isolation.
    """
    from repro.experiments.harness import ExperimentSettings
    from repro.experiments.runner import ExperimentTask, execute_task

    task = ExperimentTask(
        experiment="st-scaling",
        settings=ExperimentSettings(scale=scale, n_streams=streams, seed=42),
    )
    best = float("inf")
    for _ in range(repeats):
        best = min(best, execute_task(task).elapsed_seconds)
    return best


def bench_dispatch(iterations: int) -> float:
    """Event-loop dispatches/sec (timeout scheduling + heap + callback)."""
    from repro.sim.kernel import Simulator

    sim = Simulator()
    for i in range(iterations):
        sim.timeout(float(i))
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    return iterations / elapsed


def bench_striped_read(pages: int, n_disks: int = 4) -> float:
    """Simulated-pages/sec of wall time routing one long read through a
    striped array: stripe-map lookups, per-device queues, and the LOOK
    elevators on every member spindle.

    The return value is throughput of the *simulation*, not of the
    modelled hardware; the per-device balance is asserted, not timed, so
    a routing bug fails loudly instead of showing up as a perf blip.
    """
    from repro.disk.array import DiskArray
    from repro.disk.geometry import DiskGeometry
    from repro.sim.kernel import Simulator

    sim = Simulator()
    array = DiskArray(sim, n_disks=n_disks,
                      geometry=DiskGeometry(total_pages=max(pages, 4096)),
                      stripe_pages=8, scheduler="elevator")
    start = time.perf_counter()
    array.read(0, pages)
    sim.run()
    elapsed = time.perf_counter() - start
    per_device = [stats.pages_read for stats in array.stats.per_device]
    assert sum(per_device) == pages
    assert max(per_device) - min(per_device) <= 8
    return pages / elapsed


def bench_push_fanout(pages: int, n_consumers: int = 4) -> float:
    """Pushed-pages/sec of wall time through ``push_read`` + fan-out.

    Exercises the pipeline's hot path: absent-segment computation, the
    outstanding-page budget, the admit callback, and per-consumer
    delivery bookkeeping — with a consumer set large enough that the
    fan-out loop dominates.
    """
    from repro.buffer.pool import BufferPool
    from repro.buffer.push import PushPipeline
    from repro.disk.device import Disk
    from repro.disk.geometry import DiskGeometry
    from repro.sim.kernel import Simulator

    class _FlatPolicy:
        """Constant consumer set; every scan drives."""

        def __init__(self, consumers):
            self._consumers = list(consumers)

        def bind_push(self, pipeline):
            pass

        def push_consumer_set(self, scan_id):
            return self._consumers

        def is_push_driver(self, scan_id):
            return True

    class _Catalog:
        @staticmethod
        def page_key(name, page_no):
            return pool_key(page_no)

        @staticmethod
        def extent_keys(name, extent_no):
            base = extent_no * extent
            return [pool_key(p) for p in range(base, min(base + extent, pages))]

    class _Table:
        name = "bench"

        def __init__(self, n_pages, extent):
            self.n_pages = n_pages
            self.extent = extent

        def extent_of(self, page_no):
            return page_no // self.extent

        def extent_pages(self, extent_no):
            base = extent_no * self.extent
            return range(base, min(base + self.extent, self.n_pages))

    extent = 8
    sim = Simulator()
    disk = Disk(sim, DiskGeometry(total_pages=max(pages, 4096)))
    pool = BufferPool(sim, disk, capacity=max(256, extent * 16),
                      address_of=lambda key: key.page_no)
    pipeline = PushPipeline(sim, pool, _Catalog(),
                            _FlatPolicy(range(n_consumers)), depth=1)
    table = _Table(pages, extent)
    last_extent = table.extent_of(pages - 1)
    start = time.perf_counter()
    for extent_no in range(last_extent):
        pipeline.on_extent_entered(0, table, extent_no, 0, pages - 1)
        sim.run()
        # Drain so the budget never defers (we time the hot path, not
        # the throttle) and delivered extents do not pile up.
        pipeline._delivered.clear()
    elapsed = time.perf_counter() - start
    assert pipeline.stats.duplicate_deliveries == 0
    assert pipeline.stats.extents_pushed > 0
    return pipeline.stats.pages_delivered / elapsed


def bench_staggered_q6(repeats: int) -> float:
    """Best wall-clock seconds for the end-to-end E2 experiment.

    Runs through :func:`repro.experiments.runner.execute_task` — the same
    code path as ``run-all --jobs 1`` — at the default battery settings.
    """
    from repro.experiments.harness import ExperimentSettings
    from repro.experiments.runner import ExperimentTask, execute_task

    task = ExperimentTask(experiment="e2",
                          settings=ExperimentSettings(scale=0.25, n_streams=5,
                                                      seed=42))
    best = float("inf")
    for _ in range(repeats):
        best = min(best, execute_task(task).elapsed_seconds)
    return best


# ----------------------------------------------------------------------
# Report
# ----------------------------------------------------------------------


@dataclass
class BenchReport:
    """One full benchmark run, serializable to/from ``BENCH_kernel.json``."""

    mode: str
    calibration_ops_per_sec: float
    benchmarks: Dict[str, Dict[str, float]] = field(default_factory=dict)
    derived: Dict[str, float] = field(default_factory=dict)
    meta: Dict[str, str] = field(default_factory=dict)

    def add_throughput(self, name: str, ops_per_sec: float,
                       tolerance: Optional[float] = None) -> None:
        self.benchmarks[name] = {
            "kind": "throughput",
            "ops_per_sec": ops_per_sec,
            # Dimensionless: bench ops per calibration spin op — the
            # machine-comparable number the regression gate checks.
            "normalized": ops_per_sec / self.calibration_ops_per_sec,
        }
        if tolerance is not None:
            self.benchmarks[name]["tolerance"] = tolerance

    def add_wall(self, name: str, wall_seconds: float,
                 tolerance: Optional[float] = None) -> None:
        self.benchmarks[name] = {
            "kind": "wall",
            "wall_seconds": wall_seconds,
            # Spin-op equivalents of work: wall time priced in units of
            # this machine's calibration rate, so it transfers across
            # hosts the same way normalized throughput does.
            "normalized": wall_seconds * self.calibration_ops_per_sec,
        }
        if tolerance is not None:
            self.benchmarks[name]["tolerance"] = tolerance

    def to_dict(self) -> Dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "mode": self.mode,
            "calibration_ops_per_sec": self.calibration_ops_per_sec,
            "benchmarks": self.benchmarks,
            "derived": self.derived,
            "meta": self.meta,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "BenchReport":
        if payload.get("schema_version") != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported bench schema {payload.get('schema_version')!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        return cls(
            mode=payload.get("mode", "full"),
            calibration_ops_per_sec=payload["calibration_ops_per_sec"],
            benchmarks=payload["benchmarks"],
            derived=payload.get("derived", {}),
            meta=payload.get("meta", {}),
        )


#: End-to-end wall benchmarks are far noisier than the microbenchmarks
#: (they run millions of events through the whole stack), so they carry
#: their own, looser regression tolerances in the baseline JSON.
#: Microbenchmarks omit the key and inherit the ``--tolerance`` default.
_WALL_TOLERANCE = 0.35


def run_benchmarks(quick: bool = False,
                   only: Optional[Sequence[str]] = None) -> BenchReport:
    """Run the microbenchmark battery and return the report.

    ``only`` restricts the run to the named benchmarks (for targeted
    profiling, e.g. ``make bench-soak``); derived metrics are emitted
    only when all of their inputs ran.
    """
    params = _QUICK if quick else _FULL
    report = BenchReport(
        mode="quick" if quick else "full",
        calibration_ops_per_sec=calibrate(params["repeats"]),
        meta={
            "python": platform.python_version(),
            "implementation": platform.python_implementation(),
        },
    )

    def best_of(func: Callable[[int], float], arg: int) -> float:
        return max(func(arg) for _ in range(params["repeats"]))

    jobs: Dict[str, Callable[[], None]] = {
        "fix_hit": lambda: report.add_throughput(
            "fix_hit", best_of(bench_fix_hit, params["fix_iters"])),
        "fix_hit_generator": lambda: report.add_throughput(
            "fix_hit_generator",
            best_of(bench_fix_hit_generator, params["fix_iters"])),
        "fix_many": lambda: report.add_throughput(
            "fix_many", best_of(bench_fix_many, params["fix_iters"])),
        "fix_miss": lambda: report.add_throughput(
            "fix_miss", best_of(bench_fix_miss, params["miss_pages"])),
        "dispatch": lambda: report.add_throughput(
            "dispatch", best_of(bench_dispatch, params["dispatch_iters"])),
        "push_many": lambda: report.add_throughput(
            "push_many", best_of(bench_push_many, params["dispatch_iters"])),
        "striped_read": lambda: report.add_throughput(
            "striped_read", best_of(bench_striped_read,
                                    params["striped_pages"])),
        "push_fanout": lambda: report.add_throughput(
            "push_fanout", best_of(bench_push_fanout,
                                   params["striped_pages"])),
        "staggered_q6": lambda: report.add_wall(
            "staggered_q6", bench_staggered_q6(params["e2e_repeats"]),
            tolerance=_WALL_TOLERANCE),
        "soak_multi_device": lambda: report.add_wall(
            "soak_multi_device",
            bench_soak_multi_device(params["soak_repeats"],
                                    params["soak_scale"],
                                    params["soak_streams"]),
            tolerance=_WALL_TOLERANCE),
    }
    if only:
        unknown = sorted(set(only) - set(jobs))
        if unknown:
            raise ValueError(
                f"unknown benchmark(s) {unknown}; known: {sorted(jobs)}"
            )
        selected = [name for name in jobs if name in set(only)]
    else:
        selected = list(jobs)
    for name in selected:
        jobs[name]()
    if {"fix_hit", "fix_hit_generator"} <= set(report.benchmarks):
        report.derived["fix_hit_speedup_vs_generator"] = (
            report.benchmarks["fix_hit"]["ops_per_sec"]
            / report.benchmarks["fix_hit_generator"]["ops_per_sec"]
        )
    return report


# ----------------------------------------------------------------------
# Regression gate
# ----------------------------------------------------------------------


def compare_reports(baseline: BenchReport, current: BenchReport,
                    tolerance: float = 0.20) -> List[str]:
    """Regressions of ``current`` versus ``baseline`` (empty = pass).

    Throughput benchmarks regress when normalized throughput drops more
    than the tolerance; wall-clock benchmarks when normalized cost rises
    more than the tolerance.  A baseline entry may carry its own
    ``tolerance`` key (the noisy end-to-end wall benchmarks do), which
    overrides the global ``tolerance`` argument for that benchmark.
    Benchmarks present only in the baseline are regressions (coverage
    must not silently shrink); benchmarks only in the current run are
    ignored (forward compatibility).
    """
    problems: List[str] = []
    for name, base in baseline.benchmarks.items():
        cur = current.benchmarks.get(name)
        if cur is None:
            problems.append(f"{name}: missing from current run")
            continue
        tol = base.get("tolerance", tolerance)
        base_norm = base["normalized"]
        cur_norm = cur["normalized"]
        if base["kind"] == "throughput":
            floor = base_norm * (1.0 - tol)
            if cur_norm < floor:
                problems.append(
                    f"{name}: normalized throughput {cur_norm:.4f} below "
                    f"{floor:.4f} (baseline {base_norm:.4f} - {tol:.0%})"
                )
        else:
            ceiling = base_norm * (1.0 + tol)
            if cur_norm > ceiling:
                problems.append(
                    f"{name}: normalized cost {cur_norm:.1f} above "
                    f"{ceiling:.1f} (baseline {base_norm:.1f} + {tol:.0%})"
                )
    return problems


def render_report(report: BenchReport) -> str:
    """Human-readable table of one report."""
    from repro.metrics.report import format_table

    rows = []
    for name, entry in report.benchmarks.items():
        if entry["kind"] == "throughput":
            raw = f"{entry['ops_per_sec']:,.0f} ops/s"
        else:
            raw = f"{entry['wall_seconds']:.3f} s"
        rows.append([name, entry["kind"], raw, f"{entry['normalized']:.4g}"])
    table = format_table(["benchmark", "kind", "raw", "normalized"], rows)
    lines = [
        f"BENCH — mode {report.mode}, calibration "
        f"{report.calibration_ops_per_sec:,.0f} spin-ops/s "
        f"(python {report.meta.get('python', '?')})",
        table,
    ]
    for name, value in report.derived.items():
        lines.append(f"{name}: {value:.2f}x")
    return "\n".join(lines)


def write_report(report: BenchReport, path: str) -> None:
    """Write the JSON artifact (stable key order for clean diffs)."""
    with open(path, "w") as handle:
        json.dump(report.to_dict(), handle, indent=1, sort_keys=True)
        handle.write("\n")


def load_report(path: str) -> BenchReport:
    """Load a report written by :func:`write_report`."""
    with open(path) as handle:
        return BenchReport.from_dict(json.load(handle))
