"""Performance-regression harness (microbenchmarks + baseline compare)."""

from repro.perf.bench import (
    BenchReport,
    calibrate,
    compare_reports,
    load_report,
    render_report,
    run_benchmarks,
    write_report,
)

__all__ = [
    "BenchReport",
    "calibrate",
    "compare_reports",
    "load_report",
    "render_report",
    "run_benchmarks",
    "write_report",
]
