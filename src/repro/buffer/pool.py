"""The bufferpool: fix/unfix with prefetch, in-flight merging, priorities.

Scans interact with the pool exactly the way the paper's pseudo-code
does::

    frame = yield from pool.fix(key, prefetch=extent_keys)
    ... process the page ...
    pool.unfix(key, priority=ism.pr())

Two properties matter for reproducing the paper's numbers:

* **In-flight merging** — if scan B fixes a page for which scan A's read
  is already on the disk queue, B waits on A's I/O instead of issuing a
  second one.  This is how close-together scans turn into hits rather
  than duplicated physical reads.
* **Prefetch** — a miss reads the whole surrounding run of non-resident
  pages (one prefetch extent) in a single disk request, so seek counts
  reflect extents, not pages, matching the DB2 prototype's sequential
  prefetch.
"""

from __future__ import annotations

from typing import (
    Callable,
    Dict,
    Generator,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.buffer.page import Frame, PageKey, Priority
from repro.buffer.replacement import ReplacementPolicy, make_policy
from repro.buffer.stats import BufferStats
from repro.disk.device import Disk
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.trace.events import BufferEvict, BufferFix, BufferRelease
from repro.trace.tracer import TracerHandle

AddressOf = Callable[[PageKey], int]

#: Placeholder identity for slab frames that do not hold a page yet.
_NO_KEY = PageKey(-1, -1)

#: Bit width reserved for page numbers in the int-packed slot-map key;
#: ``space_id << _PAGE_BITS | page_no`` is injective for any database this
#: simulator can hold and hashes as a plain int (identity hash) instead of
#: a two-element tuple.
_PAGE_BITS = 48

#: Cached tracer reference shared by every pool hot path (``try_fix``,
#: ``unfix``, ``_trace_fix``, ``_evict``) — one generation-checked handle
#: instead of a ``get_tracer()`` registry lookup per event.
_TRACER = TracerHandle()


class BufferPoolError(RuntimeError):
    """Raised on pin-count misuse or pool overcommit."""


class FrameReservation:
    """A named frame reservation held by a memory-budgeted operator.

    Unlike the anonymous fault-pressure counter, a named reservation
    tracks *who* holds the frames and can be clawed back one frame at a
    time under pool pressure: the pool decrements :attr:`granted`,
    increments :attr:`clawed`, and invokes ``on_clawback`` so the owner
    can mark itself for spilling.  The callback is bookkeeping only — it
    must not perform simulation I/O (claw-back happens inside the pool's
    eviction path, which is not a point where an operator generator can
    be driven).
    """

    __slots__ = ("name", "granted", "clawed", "on_clawback", "released")

    def __init__(self, name: str, granted: int, on_clawback=None):
        self.name = name
        self.granted = granted
        self.clawed = 0
        self.on_clawback = on_clawback
        self.released = False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FrameReservation({self.name!r}, granted={self.granted}, "
            f"clawed={self.clawed})"
        )


class PoolExhausted(BufferPoolError):
    """Every frame is pinned, reserved, or in flight: no victim exists.

    The single typed endpoint for "the pool cannot make room": raised
    only after eviction found nothing, no in-flight read can be waited
    on, and no reserved frame can be clawed back.  Callers that want to
    survive overcommit (rather than treat it as a bug) catch this one
    type instead of pattern-matching message strings.
    """


class BufferPool:
    """A fixed-capacity page cache over a simulated disk."""

    #: Safety bound for the fix retry loop (a re-fixed page being evicted
    #: between I/O completion and pinning is rare; more than a handful of
    #: retries indicates a livelock-sized pool).
    MAX_FIX_RETRIES = 16

    def __init__(
        self,
        sim: Simulator,
        disk: Disk,
        capacity: int,
        address_of: AddressOf,
        policy: Optional[ReplacementPolicy] = None,
        name: str = "bufferpool",
    ):
        if capacity < 4:
            raise BufferPoolError(f"bufferpool capacity must be >= 4, got {capacity}")
        self.sim = sim
        self.disk = disk
        self.capacity = capacity
        self.address_of = address_of
        # Explicit None check: policies may define __len__ and an empty
        # policy must not be mistaken for "use the default".
        self.policy = policy if policy is not None else make_policy(
            "priority-lru", capacity
        )
        self.name = name
        self.stats = BufferStats()
        # Slot-indexed frame table: a contiguous slab of ``capacity``
        # preallocated frames, a LIFO free-slot stack, and an int-keyed
        # page→slot map.  Admission recycles a slab frame (eight attribute
        # stores) instead of constructing a dataclass, and every residency
        # probe is an int-dict hit.  ``_slot_map`` preserves admission
        # order, so ``resident_keys()`` reads exactly as the old
        # ``Dict[PageKey, Frame]`` did.
        self._slots: List[Frame] = [Frame(key=_NO_KEY) for _ in range(capacity)]
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        self._slot_map: Dict[int, int] = {}
        self._inflight: Dict[PageKey, Event] = {}
        # Frames reserved away by external pressure (fault injection)
        # plus named operator reservations; always 0 in runs that use
        # neither, so every path below behaves exactly as if the
        # reservation mechanism did not exist.
        self._reserved = 0
        # Named claimants (memory-budgeted operators).  The sum of their
        # ``granted`` counts is part of ``_reserved``; the remainder is
        # the anonymous fault-pressure share.
        self._claimants: List[FrameReservation] = []
        self.clawed_back_frames = 0

    # ------------------------------------------------------------------
    # External pressure (fault injection)
    # ------------------------------------------------------------------

    #: Frames that can never be reserved away: forward progress needs a
    #: handful of pinnable frames (mirrors the capacity >= 4 floor).
    MIN_USABLE_FRAMES = 4

    @property
    def effective_capacity(self) -> int:
        """Capacity minus frames reserved by external pressure."""
        return self.capacity - self._reserved

    @property
    def reserved_frames(self) -> int:
        """Frames currently reserved away from the pool."""
        return self._reserved

    def reserve(self, pages: int) -> int:
        """Reserve up to ``pages`` frames away from the pool.

        Clamped so at least :data:`MIN_USABLE_FRAMES` remain usable;
        returns the number actually reserved.
        """
        if pages < 0:
            raise BufferPoolError(f"cannot reserve {pages} pages")
        granted = max(
            0, min(pages, self.capacity - self.MIN_USABLE_FRAMES - self._reserved)
        )
        self._reserved += granted
        return granted

    def release_reserved(self, pages: int) -> int:
        """Return previously reserved *anonymous* frames.

        Clamped to the anonymous share so a fault-pressure release can
        never free frames a named operator reservation still holds.
        Returns how many frames were actually freed.
        """
        if pages < 0:
            raise BufferPoolError(f"cannot release {pages} reserved pages")
        anonymous = self._reserved - sum(r.granted for r in self._claimants)
        freed = min(pages, anonymous)
        self._reserved -= freed
        return freed

    # ------------------------------------------------------------------
    # Named operator reservations (memory-budgeted operators)
    # ------------------------------------------------------------------

    def reserve_frames(
        self, name: str, pages: int, on_clawback=None
    ) -> FrameReservation:
        """Grant a named, claw-backable frame reservation.

        The grant is clamped exactly like :meth:`reserve`; the returned
        :class:`FrameReservation` records how many frames the owner
        actually holds (``granted``) and how many the pool later clawed
        back (``clawed``).  Release with :meth:`release_frames`.
        """
        granted = self.reserve(pages)
        reservation = FrameReservation(name, granted, on_clawback)
        self._claimants.append(reservation)
        return reservation

    def release_frames(self, reservation: FrameReservation) -> int:
        """Return every frame a named reservation still holds."""
        if reservation.released:
            return 0
        reservation.released = True
        try:
            self._claimants.remove(reservation)
        except ValueError:
            return 0
        freed = reservation.granted
        reservation.granted = 0
        self._reserved -= freed
        return freed

    def _claw_back_one(self) -> bool:
        """Take one reserved frame back under pool pressure.

        Named claimants are clawed first, newest first (LIFO): the most
        recently admitted operator is the one asked to shrink, mirroring
        how late arrivals are the first throttled elsewhere.  The
        anonymous fault-pressure share is only touched when no claimant
        holds frames.  Returns whether a frame was recovered.
        """
        if self._reserved <= 0:
            return False
        for reservation in reversed(self._claimants):
            if reservation.granted > 0:
                reservation.granted -= 1
                reservation.clawed += 1
                self._reserved -= 1
                self.clawed_back_frames += 1
                if reservation.on_clawback is not None:
                    reservation.on_clawback(reservation)
                return True
        self._reserved -= 1
        self.clawed_back_frames += 1
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def resident_count(self) -> int:
        """Number of pages currently resident."""
        return len(self._slot_map)

    @property
    def inflight_count(self) -> int:
        """Number of pages with a disk read outstanding."""
        return len(self._inflight)

    def is_resident(self, key: PageKey) -> bool:
        """Whether the page is currently in the pool."""
        return (key.space_id << _PAGE_BITS | key.page_no) in self._slot_map

    def frame_of(self, key: PageKey) -> Optional[Frame]:
        """The resident frame for ``key``, if any."""
        slot = self._slot_map.get(key.space_id << _PAGE_BITS | key.page_no)
        return None if slot is None else self._slots[slot]

    def resident_keys(self) -> List[PageKey]:
        """Snapshot of resident page keys in admission order (tests and
        metrics)."""
        slots = self._slots
        return [slots[slot].key for slot in self._slot_map.values()]

    # ------------------------------------------------------------------
    # Fix / unfix
    # ------------------------------------------------------------------

    def try_fix(self, key: PageKey) -> Optional[Frame]:
        """Non-generator hit fast path: pin ``key`` if it is resident.

        Scans call this first; a resident page then costs one dict lookup
        and a handful of attribute updates instead of a generator frame.
        Returns ``None`` on a miss or an in-flight read **without touching
        any counter**, so the caller's fall back to :meth:`fix` performs
        the full classification and the accounting identity
        ``logical = hits + misses + inflight_waits`` is preserved exactly.
        The trace event emitted on a hit is identical to the generator
        path's.
        """
        slot = self._slot_map.get(key.space_id << _PAGE_BITS | key.page_no)
        if slot is None:
            return None
        frame = self._slots[slot]
        stats = self.stats
        stats.logical_reads += 1
        stats.hits += 1
        frame.pin_count += 1
        frame.last_used_at = self.sim.now
        frame.access_count += 1
        self.policy.on_hit(key)
        tracer = _TRACER.active()
        if tracer is not None:
            tracer.emit(BufferFix(
                time=self.sim.now, space_id=key.space_id, page_no=key.page_no,
                outcome="hit",
            ))
        return frame

    def try_fix_many(self, keys: Sequence[PageKey]) -> List[Optional[Frame]]:
        """Batched :meth:`try_fix`: pin every currently-resident key.

        Returns a frame-or-``None`` list parallel to ``keys``; counters,
        policy touches, and trace events per resident key are identical
        to ``try_fix`` called in a loop (one slot-map probe each, but the
        stats/tracer/clock reads are hoisted out of the loop).

        Demand scans deliberately do **not** route their inner loop
        through this: batch-pinning a whole extent would lengthen pin
        lifetimes, change the evictable set, and so perturb victim choice
        — the metric digests would no longer be byte-identical to the
        per-page formulation.  The intended callers hold the returned
        pins only across code that advances no simulated time (push
        delivery verification, warm-set probes, benchmarks).
        """
        slot_map = self._slot_map
        slots = self._slots
        stats = self.stats
        now = self.sim.now
        on_hit = self.policy.on_hit
        # No simulated time passes inside the batch, so one tracer
        # resolution covers every emitted event.
        tracer = _TRACER.active()
        frames: List[Optional[Frame]] = []
        append = frames.append
        for key in keys:
            slot = slot_map.get(key.space_id << _PAGE_BITS | key.page_no)
            if slot is None:
                append(None)
                continue
            frame = slots[slot]
            stats.logical_reads += 1
            stats.hits += 1
            frame.pin_count += 1
            frame.last_used_at = now
            frame.access_count += 1
            on_hit(key)
            if tracer is not None:
                tracer.emit(BufferFix(
                    time=now, space_id=key.space_id, page_no=key.page_no,
                    outcome="hit",
                ))
            append(frame)
        return frames

    def fix_many(
        self, keys: Sequence[PageKey], prefetch: Optional[Sequence[PageKey]] = None
    ) -> Generator[Event, object, List[Frame]]:
        """Pin every key in ``keys``, reading misses from disk.

        Observation-equivalent to calling :meth:`fix` once per key in
        order (hits resolve through the non-generator fast path first);
        ``prefetch`` defaults to ``keys`` itself, so a miss reads the
        whole remaining absent run in one request.  The digest caveat on
        :meth:`try_fix_many` applies: all pins overlap until the caller
        releases them.
        """
        frames: List[Frame] = []
        run = prefetch if prefetch is not None else keys
        for key in keys:
            frame = self.try_fix(key)
            if frame is None:
                frame = yield from self.fix(key, prefetch=run)
            frames.append(frame)
        return frames

    def fix(
        self, key: PageKey, prefetch: Optional[Sequence[PageKey]] = None
    ) -> Generator[Event, object, Frame]:
        """Pin ``key`` into the pool, reading from disk if necessary.

        This is a simulation generator: drive it with ``yield from`` inside
        a process.  ``prefetch`` is an optional run of keys (must contain
        ``key``, contiguous in disk address) that a miss is allowed to read
        in one request.
        """
        self.stats.logical_reads += 1
        # Each fix is classified (hit / miss / in-flight wait) by the FIRST
        # resolution path it takes, so the accounting identity
        # ``logical = hits + misses + inflight_waits`` always holds; rare
        # eviction races that force another round count as fix_retries.
        classified = False
        slot_key = key.space_id << _PAGE_BITS | key.page_no
        for attempt in range(self.MAX_FIX_RETRIES):
            if attempt > 0:
                self.stats.fix_retries += 1
            slot = self._slot_map.get(slot_key)
            if slot is not None:
                frame = self._slots[slot]
                frame.pin_count += 1
                frame.last_used_at = self.sim.now
                frame.access_count += 1
                self.policy.on_hit(key)
                if not classified:
                    self.stats.hits += 1
                    self._trace_fix(key, "hit")
                return frame

            pending = self._inflight.get(key)
            if pending is not None:
                if not classified:
                    self.stats.inflight_waits += 1
                    classified = True
                    self._trace_fix(key, "inflight_wait")
                yield pending
            else:
                if not classified:
                    self.stats.misses += 1
                    classified = True
                    self._trace_fix(key, "miss")
                yield from self._read_run(key, prefetch)

            slot = self._slot_map.get(slot_key)
            if slot is not None:
                frame = self._slots[slot]
                frame.pin_count += 1
                frame.last_used_at = self.sim.now
                frame.access_count += 1
                return frame
            # Evicted between I/O completion and our resumption; retry.
        raise BufferPoolError(
            f"page {key} evicted {self.MAX_FIX_RETRIES} times before it could be "
            f"pinned; pool of {self.capacity} pages is too small for the pin load"
        )

    def unfix(self, key: PageKey, priority: Priority = Priority.NORMAL) -> None:
        """Release one pin on ``key`` with a replacement-priority hint."""
        slot = self._slot_map.get(key.space_id << _PAGE_BITS | key.page_no)
        if slot is None:
            raise BufferPoolError(f"unfix of non-resident page {key}")
        frame = self._slots[slot]
        if frame.pin_count <= 0:
            raise BufferPoolError(f"unfix of unpinned page {key}")
        frame.pin_count -= 1
        frame.priority = priority
        self.policy.on_release(key, priority)
        tracer = _TRACER.active()
        if tracer is not None:
            tracer.emit(BufferRelease(
                time=self.sim.now, space_id=key.space_id, page_no=key.page_no,
                priority=int(priority),
            ))

    # The paper calls this operation "release page with priority p".
    release = unfix

    def _trace_fix(self, key: PageKey, outcome: str) -> None:
        tracer = _TRACER.active()
        if tracer is not None:
            tracer.emit(BufferFix(
                time=self.sim.now, space_id=key.space_id, page_no=key.page_no,
                outcome=outcome,
            ))

    def mark_dirty(self, key: PageKey) -> None:
        """Flag a pinned page as modified (write back before eviction)."""
        frame = self.frame_of(key)
        if frame is None or not frame.pinned:
            raise BufferPoolError(f"mark_dirty requires a pinned resident page, got {key}")
        frame.dirty = True

    # ------------------------------------------------------------------
    # Push path (leader-driven prefetch pipeline)
    # ------------------------------------------------------------------

    def push_read(self, keys: Sequence[PageKey]) -> "Tuple[Optional[Event], str]":
        """Asynchronously read the absent pages of a pushed extent.

        The push pipeline's entry point: a plain call (no generator — the
        driving scan never blocks on it) that issues one disk read per
        address-contiguous run of absent pages and admits them exactly
        like a demand prefetch.  None of the fix classification counters
        move — pushed pages surface later as ``hits`` or
        ``inflight_waits`` of the consuming scans, so the accounting
        identity ``logical = hits + misses + inflight_waits`` is
        untouched and nothing is double-counted.

        Room is made by evicting *clean, unpinned* victims only (a push
        must never block on a dirty writeback); when even that cannot fit
        the extent, the push is dropped — consumers simply fall back to
        demand fetching.

        Returns ``(completion, outcome)``: ``("issued", event)`` waits on
        every read issued here, ``(None, "resident")`` means the whole
        extent is already resident or in flight, ``(None, "no_room")``
        means the push was dropped.
        """
        segments = self._absent_segments(keys)
        if not segments:
            return None, "resident"
        needed = sum(len(segment) for segment in segments)
        room = self.capacity - self._reserved - len(self._slot_map) - len(self._inflight)
        if needed > room:
            room += self._evict_clean(needed - room)
        kept: List[List[PageKey]] = []
        for segment in segments:
            if len(segment) <= room:
                kept.append(segment)
                room -= len(segment)
        if not kept:
            return None, "no_room"
        stats = self.stats
        completions: List[Event] = []
        for segment in kept:
            completion = Event(self.sim)
            for run_key in segment:
                self._inflight[run_key] = completion
            stats.physical_requests += 1
            stats.physical_pages_read += len(segment)
            stats.pushed_requests += 1
            stats.pushed_pages += len(segment)
            read_done = self.disk.read(self.address_of(segment[0]), len(segment))
            read_done.add_callback(
                lambda _ev, seg=segment, comp=completion: self._admit_run(seg, comp)
            )
            completions.append(completion)
        if len(completions) == 1:
            return completions[0], "issued"
        return self.sim.all_of(completions), "issued"

    def _evict_clean(self, count: int) -> int:
        """Synchronously evict up to ``count`` clean unpinned pages."""
        freed = 0
        tracer = _TRACER.active()
        while freed < count:
            victim_key = self.policy.choose_victim(self._evictable_clean)
            if victim_key is None:
                break
            self._free.append(self._slot_map.pop(
                victim_key.space_id << _PAGE_BITS | victim_key.page_no
            ))
            self.policy.on_evict(victim_key)
            self.stats.evictions += 1
            freed += 1
            if tracer is not None:
                tracer.emit(BufferEvict(
                    time=self.sim.now, space_id=victim_key.space_id,
                    page_no=victim_key.page_no, written_back=False,
                ))
        return freed

    def _evictable_clean(self, key: PageKey) -> bool:
        frame = self.frame_of(key)
        return frame is not None and not frame.pinned and not frame.dirty

    # ------------------------------------------------------------------
    # Miss path
    # ------------------------------------------------------------------

    def _read_run(
        self, key: PageKey, prefetch: Optional[Sequence[PageKey]]
    ) -> Generator[Event, object, None]:
        slot_key = key.space_id << _PAGE_BITS | key.page_no
        while True:
            if slot_key in self._slot_map:
                return  # became resident while we waited for room
            pending = self._inflight.get(key)
            if pending is not None:
                yield pending
                return
            run = self._plan_run(key, prefetch)
            # Reserve room: frames + inflight + new run must fit in the
            # capacity left after external pressure reservations.
            capacity = self.capacity - self._reserved
            needed = len(self._slot_map) + len(self._inflight) + len(run) - capacity
            if needed <= 0:
                break
            freed = yield from self._evict(needed)
            if freed >= needed:
                break
            # Could not make room for the whole prefetch run; fall back to
            # reading just the demanded page.
            run = [key]
            needed = len(self._slot_map) + len(self._inflight) + 1 - capacity
            if needed <= 0:
                break
            freed = yield from self._evict(needed)
            if freed >= needed:
                break
            if self._inflight:
                # Every frame is pinned or in flight: wait for any
                # outstanding read to land, then re-plan.
                yield next(iter(self._inflight.values()))
                continue
            if self._claw_back_one():
                # Everything usable is pinned but reservations hold
                # frames: claw one back (named claimants first) rather
                # than wedging the scan.
                continue
            raise PoolExhausted(
                f"bufferpool {self.name} overcommitted: all "
                f"{self.capacity} pages pinned"
            )
        completion = Event(self.sim)
        for run_key in run:
            self._inflight[run_key] = completion
        self.stats.physical_requests += 1
        self.stats.physical_pages_read += len(run)
        if len(run) > 1:
            self.stats.prefetched_pages += len(run) - 1
        read_done = self.disk.read(self.address_of(run[0]), len(run))
        read_done.add_callback(lambda _ev: self._admit_run(run, completion))
        yield completion

    def _admit_run(self, run: List[PageKey], completion: Event) -> None:
        now = self.sim.now
        slot_map = self._slot_map
        slots = self._slots
        free = self._free
        inflight_pop = self._inflight.pop
        on_admit = self.policy.on_admit
        for run_key in run:
            inflight_pop(run_key, None)
            slot_key = run_key.space_id << _PAGE_BITS | run_key.page_no
            if slot_key in slot_map:
                continue
            if not free:
                raise BufferPoolError(
                    f"bufferpool {self.name} slot table overcommitted admitting "
                    f"{run_key}: {len(slot_map)} resident of {self.capacity}"
                )
            slot = free.pop()
            slots[slot].reset(run_key, now)
            slot_map[slot_key] = slot
            on_admit(run_key)
        completion.succeed(run)

    def _plan_run(
        self, key: PageKey, prefetch: Optional[Sequence[PageKey]]
    ) -> List[PageKey]:
        """Choose the contiguous run of absent pages to read for a miss."""
        if not prefetch:
            return [key]
        candidates = list(prefetch)
        if key not in candidates:
            raise BufferPoolError(f"prefetch run must contain the demanded page {key}")
        # Keep only pages that actually need reading.
        segments = self._absent_segments(candidates)
        for segment in segments:
            if key in segment:
                return segment
        # The demanded page became resident while planning — read just it;
        # the caller's retry loop will then hit.
        return [key]

    def _absent_segments(self, candidates: Iterable[PageKey]) -> List[List[PageKey]]:
        """Split candidates into address-contiguous runs of absent pages."""
        segments: List[List[PageKey]] = []
        current: List[PageKey] = []
        prev_addr: Optional[int] = None
        slot_map = self._slot_map
        inflight = self._inflight
        for candidate in candidates:
            absent = (
                (candidate.space_id << _PAGE_BITS | candidate.page_no)
                not in slot_map
                and candidate not in inflight
            )
            addr = self.address_of(candidate)
            contiguous = prev_addr is not None and addr == prev_addr + 1
            if absent and current and contiguous:
                current.append(candidate)
            elif absent:
                if current:
                    segments.append(current)
                current = [candidate]
            else:
                if current:
                    segments.append(current)
                current = []
            prev_addr = addr if absent else None
        if current:
            segments.append(current)
        return segments

    def _evict(self, count: int) -> Generator[Event, object, int]:
        """Evict up to ``count`` pages; returns how many were freed."""
        freed = 0
        while freed < count:
            victim_key = self.policy.choose_victim(self._evictable)
            if victim_key is None:
                break
            victim_slot_key = victim_key.space_id << _PAGE_BITS | victim_key.page_no
            frame = self._slots[self._slot_map[victim_slot_key]]
            wrote_back = frame.dirty
            if frame.dirty:
                # Pin during writeback so a concurrent fix cannot race the
                # page out from under the write.
                frame.pin_count += 1
                self.stats.writebacks += 1
                yield self.disk.write(self.address_of(victim_key), 1)
                frame.pin_count -= 1
                frame.dirty = False
                if frame.pinned:
                    # Someone fixed it while we wrote; it is no longer a victim.
                    continue
            self._free.append(self._slot_map.pop(victim_slot_key))
            self.policy.on_evict(victim_key)
            self.stats.evictions += 1
            freed += 1
            tracer = _TRACER.active()
            if tracer is not None:
                tracer.emit(BufferEvict(
                    time=self.sim.now, space_id=victim_key.space_id,
                    page_no=victim_key.page_no, written_back=wrote_back,
                ))
        return freed

    def _evictable(self, key: PageKey) -> bool:
        frame = self.frame_of(key)
        return frame is not None and not frame.pinned

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<BufferPool {self.name} {len(self._slot_map)}/{self.capacity} "
            f"resident, {len(self._inflight)} in flight>"
        )
