"""Bufferpool counters."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class BufferStats:
    """Cumulative pool activity counters.

    ``logical_reads`` counts every fix; ``hits`` are fixes satisfied from
    a resident frame; ``inflight_waits`` are fixes that piggybacked on an
    I/O already issued by another scan (these become hits from the disk's
    point of view — no second physical read happens — and are the direct
    mechanical source of the paper's I/O savings).
    """

    logical_reads: int = 0
    hits: int = 0
    misses: int = 0
    inflight_waits: int = 0
    #: Fix calls that had to re-resolve after an eviction race.
    fix_retries: int = 0
    physical_requests: int = 0
    physical_pages_read: int = 0
    prefetched_pages: int = 0
    #: Subset of physical reads issued by the push pipeline (storage
    #: pushes an extent once; consumers later hit or inflight-wait).
    pushed_requests: int = 0
    pushed_pages: int = 0
    evictions: int = 0
    writebacks: int = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of fixes that did not trigger a new physical read."""
        if self.logical_reads == 0:
            return 0.0
        return (self.hits + self.inflight_waits) / self.logical_reads
