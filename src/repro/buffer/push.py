"""The leader-driven push prefetch pipeline.

The classic model in this codebase is *pull*: every scan demands a page,
misses read one prefetch extent, and trailing group members re-request
pages their leader already consumed.  The push model (the
High-Throughput Push-Based Storage Manager thesis, arXiv 1905.07113)
inverts it: when the *driving* scan of a consumer set crosses an extent
boundary, the sharing policy registers every member of the set as a
consumer of the next few extents, the storage array fetches each extent
**once** from its owning device, and the completed pages fan out to all
registered consumers — trailers never issue a re-request for pushed
pages, they simply hit.

Responsibilities are split three ways:

* the sharing policy answers *who* consumes (``push_consumer_set``) and
  *who* drives (``is_push_driver``) — group members behind the leader,
  cooperative followers behind their attach target;
* :meth:`~repro.buffer.pool.BufferPool.push_read` answers *how* pages
  become resident without disturbing hit/miss accounting;
* this pipeline owns the consumer bookkeeping: registration merging,
  at-most-once delivery per consumer per push, and purging a scan from
  every consumer set the moment it ends or aborts (the invariant checker
  asserts both properties under fault injection).

With ``push_enabled=False`` (the default) this module is never
constructed and every metric stays byte-identical to a build without it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set, Tuple

#: A pushed unit: (table name, extent number).
ExtentKey = Tuple[str, int]


@dataclass
class PushStats:
    """Cumulative pipeline counters (tests, invariants, bench tables)."""

    #: Fresh push generations started (one physical fetch each, at most).
    extents_pushed: int = 0
    #: Registrations merged into an already in-flight push of the extent.
    merged_registrations: int = 0
    #: Pushes answered entirely from resident/in-flight pages.
    extents_already_resident: int = 0
    #: Pushes dropped because no clean room could be made.
    extents_dropped_no_room: int = 0
    #: Pushes deferred because the outstanding-push budget was full
    #: (bounds pool churn: a push must never thrash pages faster than
    #: consumers drain them).
    extents_throttled: int = 0
    #: Per-consumer extent deliveries fanned out by the sim kernel.
    deliveries: int = 0
    pages_delivered: int = 0
    #: Deliveries that would have been the second one for the same
    #: consumer within one push generation.  Always 0 — the invariant
    #: checker fails the run otherwise.
    duplicate_deliveries: int = 0
    #: ``on_extent_entered`` calls by scans that are not their set's
    #: driver (trailers/followers — they never issue requests).
    non_driver_calls: int = 0
    #: Consumer registrations dropped because the scan ended or aborted
    #: before its extent landed.
    purged_registrations: int = 0


@dataclass
class _PushState:
    """Bookkeeping for one in-flight or delivered push generation."""

    consumers: Set[int] = field(default_factory=set)
    delivered: Dict[int, int] = field(default_factory=dict)
    #: Pages this push put in flight (charged against the budget until
    #: fan-out).
    pages_issued: int = 0


class PushPipeline:
    """Fan-out coordinator between sharing policy, pool, and array."""

    #: Extents kept in flight ahead of the driving scan when the config
    #: asks for "auto" (``push_depth=0``).  One extent ahead keeps the
    #: next extent's owning device busy while the current one is
    #: consumed; deeper pipelines read ahead of what small pools can
    #: hold and start thrashing pages their own consumers still need.
    DEFAULT_DEPTH = 1

    #: Ceiling on pages in flight from pushes, as a fraction of pool
    #: capacity.  Past it new pushes are deferred (the driver's next
    #: extent crossing retries), so the pipeline can never churn a small
    #: pool faster than consumers drain it.
    BUDGET_FRACTION = 0.125

    def __init__(self, sim, pool, catalog, policy, depth: int = 0):
        if depth < 0:
            raise ValueError(f"push depth must be >= 0, got {depth}")
        self.sim = sim
        self.pool = pool
        self.catalog = catalog
        self.policy = policy
        self.depth = depth or self.DEFAULT_DEPTH
        self.stats = PushStats()
        self.page_budget = max(1, int(pool.capacity * self.BUDGET_FRACTION))
        self._outstanding_pages = 0
        # Extents with a registration cycle open: consumers still waiting
        # for fan-out.  Popped (moved to _delivered) when the extent's
        # pages land.
        self._pending: Dict[ExtentKey, _PushState] = {}
        # Completed generations, kept until a re-push or scan exit purges
        # them; the at-most-once invariant is checked against these.
        self._delivered: Dict[ExtentKey, _PushState] = {}
        policy.bind_push(self)

    # ------------------------------------------------------------------
    # Scan-facing entry points
    # ------------------------------------------------------------------

    def on_extent_entered(
        self,
        scan_id: int,
        table,
        extent_no: int,
        first_page: int,
        last_page: int,
    ) -> None:
        """The scan crossed into ``extent_no``: stage the extents ahead.

        Only the consumer set's driver issues pushes; every other member
        returns immediately (that *is* the no-re-request property).
        """
        if not self.policy.is_push_driver(scan_id):
            self.stats.non_driver_calls += 1
            return
        consumers = self.policy.push_consumer_set(scan_id)
        first_extent = table.extent_of(first_page)
        last_extent = table.extent_of(last_page)
        target = extent_no
        for _ in range(self.depth):
            target = target + 1 if target < last_extent else first_extent
            if target == extent_no:
                break  # the range is narrower than the pipeline depth
            self._push_extent(consumers, table, target)

    def scan_ended(self, scan_id: int, aborted: bool) -> None:
        """Purge a departing scan from every consumer set and log.

        Called by :meth:`SharingPolicy._retire` for clean ends and aborts
        alike, so no consumer set ever survives ``abort_scan``.
        """
        del aborted  # same cleanup either way
        for state in self._pending.values():
            if scan_id in state.consumers:
                state.consumers.discard(scan_id)
                self.stats.purged_registrations += 1
        for state in self._delivered.values():
            state.consumers.discard(scan_id)
            state.delivered.pop(scan_id, None)

    # ------------------------------------------------------------------
    # Introspection (invariant checker, tests)
    # ------------------------------------------------------------------

    def consumer_sets(self) -> Dict[ExtentKey, Set[int]]:
        """Live (pending) extent -> consumer-set snapshot."""
        return {
            key: set(state.consumers) for key, state in self._pending.items()
        }

    def delivery_counts(self) -> Dict[ExtentKey, Dict[int, int]]:
        """Completed extent -> per-consumer delivery counts."""
        return {
            key: dict(state.delivered)
            for key, state in self._delivered.items()
        }

    def consumers_of(self, scan_id: int) -> List[ExtentKey]:
        """Extents the scan is currently registered for (pending only)."""
        return [
            key
            for key, state in self._pending.items()
            if scan_id in state.consumers
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _push_extent(self, consumers, table, extent_no: int) -> None:
        key = (table.name, extent_no)
        pending = self._pending.get(key)
        if pending is not None:
            # A push of this extent is already in flight (our own earlier
            # call, or another group's driver): merge the registration —
            # the pool's in-flight merging already guarantees one
            # physical fetch, the set union guarantees one delivery each.
            pending.consumers.update(consumers)
            self.stats.merged_registrations += 1
            return
        done = self._delivered.get(key)
        if done is not None and set(consumers) <= set(done.delivered):
            # The last generation already reached every consumer in this
            # set; the driver advancing one extent re-announces the same
            # pipeline window, it is not a new push.
            return
        # Interned in the catalog — one dict hit per extent, no per-page
        # key construction on the push hot path.
        keys = self.catalog.extent_keys(table.name, extent_no)
        # The budget is a ceiling, not a gate: with nothing outstanding one
        # push always proceeds, so a pool smaller than budget/extent math
        # would suggest still gets at-most-one extent in flight.
        if self._outstanding_pages + len(keys) > self.page_budget:
            self.stats.extents_throttled += 1
            return
        state = _PushState(consumers=set(consumers))
        self._pending[key] = state
        # A re-push (evicted extent, or a new consumer joined) starts a
        # fresh generation; the previous generation's delivery log must
        # not trip the at-most-once check against the new deliveries.
        self._delivered.pop(key, None)
        completion, outcome = self.pool.push_read(keys)
        if outcome == "no_room":
            self._pending.pop(key, None)
            self.stats.extents_dropped_no_room += 1
            return
        self.stats.extents_pushed += 1
        if completion is None:
            self.stats.extents_already_resident += 1
            self._fan_out(key, len(keys))
        else:
            state.pages_issued = len(keys)
            self._outstanding_pages += len(keys)
            completion.add_callback(
                lambda _ev, k=key, n=len(keys): self._fan_out(k, n)
            )

    def _fan_out(self, key: ExtentKey, n_pages: int) -> None:
        """The extent landed: deliver it to every registered consumer."""
        state = self._pending.pop(key, None)
        if state is None:
            return
        self._outstanding_pages -= state.pages_issued
        for consumer in sorted(state.consumers):
            count = state.delivered.get(consumer, 0) + 1
            state.delivered[consumer] = count
            if count > 1:
                self.stats.duplicate_deliveries += 1
            self.stats.deliveries += 1
            self.stats.pages_delivered += n_pages
        self._delivered[key] = state
