"""Page identity, release priorities, and resident frames."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import NamedTuple


class PageKey(NamedTuple):
    """Identity of a database page: (tablespace id, page number)."""

    space_id: int
    page_no: int


class Priority(IntEnum):
    """Release-priority hint attached when a scan unfixes a page.

    The paper's mechanism: the group *leader* releases pages HIGH (the
    rest of the group will need them soon), the *trailer* releases LOW
    (nobody is following, so the page may be evicted early), everyone else
    NORMAL.  Victim selection prefers lower values.
    """

    LOW = 0
    NORMAL = 1
    HIGH = 2


@dataclass(slots=True)
class Frame:
    """A resident page slot in the bufferpool.

    Frames are pool-owned slab objects: the pool preallocates ``capacity``
    of them once and recycles a frame for a new page when its slot turns
    over (see :meth:`reset`).  Holding a frame reference is valid while
    the page is pinned; after unfix+eviction the same object may describe
    a different page.
    """

    key: PageKey
    pin_count: int = 0
    dirty: bool = False
    priority: Priority = Priority.NORMAL
    admitted_at: float = 0.0
    last_used_at: float = 0.0
    access_count: int = field(default=0)

    @property
    def pinned(self) -> bool:
        """Whether any process currently holds the page fixed."""
        return self.pin_count > 0

    def reset(self, key: PageKey, now: float) -> None:
        """Recycle this slab frame for a freshly admitted page."""
        self.key = key
        self.pin_count = 0
        self.dirty = False
        self.priority = Priority.NORMAL
        self.admitted_at = now
        self.last_used_at = now
        self.access_count = 0
