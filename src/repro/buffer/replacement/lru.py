"""Classic recency policies: LRU, MRU, FIFO."""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.buffer.page import PageKey
from repro.buffer.replacement.base import EvictablePredicate, ReplacementPolicy


class LruPolicy(ReplacementPolicy):
    """Least-recently-used: evict the page untouched for the longest."""

    name = "lru"

    def __init__(self) -> None:
        self._order: "OrderedDict[PageKey, None]" = OrderedDict()

    def on_admit(self, key: PageKey) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def on_hit(self, key: PageKey) -> None:
        self._order.move_to_end(key)

    def choose_victim(self, evictable: EvictablePredicate) -> Optional[PageKey]:
        for key in self._order:
            if evictable(key):
                return key
        return None

    def on_evict(self, key: PageKey) -> None:
        self._order.pop(key, None)

    def __len__(self) -> int:
        return len(self._order)


class MruPolicy(LruPolicy):
    """Most-recently-used: evict the page touched most recently.

    Chou & DeWitt showed MRU is the right policy for single large looping
    scans; it serves as a related-work baseline in the policy ablation.
    """

    name = "mru"

    def choose_victim(self, evictable: EvictablePredicate) -> Optional[PageKey]:
        for key in reversed(self._order):
            if evictable(key):
                return key
        return None


class FifoPolicy(LruPolicy):
    """First-in-first-out: ignore accesses, evict the oldest admit."""

    name = "fifo"

    def on_hit(self, key: PageKey) -> None:
        # FIFO deliberately ignores recency.
        pass
