"""Predictive Buffer Management eviction (arXiv 1208.4170).

The policy half of PBM: ask the scan registry
(:class:`repro.core.pbm.PbmScanManager`) for each resident page's
predicted next-consumption time and evict the page whose next read lies
furthest in the future — pages no registered scan will ever touch
(prediction ``inf``) go first, then the longest-time-to-reuse page.
Ties (including the common all-``inf`` case) fall back to least recently
used, so an unbound policy degrades to plain LRU.

The oracle is attached after construction via :meth:`PbmPolicy.bind`,
because the manager and the pool are built together by the database
facade and the pool constructor runs first.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Optional, Protocol

from repro.buffer.page import PageKey, Priority
from repro.buffer.replacement.base import EvictablePredicate, ReplacementPolicy


class ReuseOracle(Protocol):
    """What the policy needs from the scan registry."""

    def next_consumption_time(self, key: PageKey) -> float:
        """Predicted seconds until ``key`` is next read; inf = never."""


class PbmPolicy(ReplacementPolicy):
    """Evict the page with the longest predicted time to reuse."""

    name = "pbm"

    def __init__(self) -> None:
        self._order: "OrderedDict[PageKey, None]" = OrderedDict()
        self._oracle: Optional[ReuseOracle] = None

    def bind(self, oracle: ReuseOracle) -> None:
        """Attach the reuse-time oracle (the PBM scan manager)."""
        self._oracle = oracle

    @property
    def bound(self) -> bool:
        """Whether an oracle is attached (unbound behaves as LRU)."""
        return self._oracle is not None

    def on_admit(self, key: PageKey) -> None:
        self._order[key] = None
        self._order.move_to_end(key)

    def on_hit(self, key: PageKey) -> None:
        self._order.move_to_end(key)

    def on_release(self, key: PageKey, priority: Priority) -> None:
        # Predictions, not release hints, drive PBM eviction.
        pass

    def choose_victim(self, evictable: EvictablePredicate) -> Optional[PageKey]:
        oracle = self._oracle
        if oracle is None:
            for key in self._order:
                if evictable(key):
                    return key
            return None
        victim: Optional[PageKey] = None
        victim_reuse = -math.inf
        # LRU-first iteration with a strict > keeps the least recently
        # used page among equal predictions (deterministic tie-break).
        for key in self._order:
            if not evictable(key):
                continue
            reuse = oracle.next_consumption_time(key)
            if reuse > victim_reuse:
                victim = key
                victim_reuse = reuse
        return victim

    def on_evict(self, key: PageKey) -> None:
        self._order.pop(key, None)

    def __len__(self) -> int:
        return len(self._order)
