"""DB2-style priority-aware LRU — the pool policy the paper's mechanism
actually talks to.

Pages live in one LRU list per :class:`~repro.buffer.page.Priority` level.
Victim selection walks levels from LOW to HIGH and takes the least
recently used evictable page of the lowest non-empty level.  A release
with a new priority moves the page between levels, which is exactly the
"release page with priority p" call in the paper's scan pseudo-code.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional

from repro.buffer.page import PageKey, Priority
from repro.buffer.replacement.base import EvictablePredicate, ReplacementPolicy


class PriorityLruPolicy(ReplacementPolicy):
    """LRU within priority classes; lowest class evicted first."""

    name = "priority-lru"

    def __init__(self) -> None:
        self._levels: Dict[Priority, "OrderedDict[PageKey, None]"] = {
            level: OrderedDict() for level in sorted(Priority)
        }
        self._priority_of: Dict[PageKey, Priority] = {}

    def on_admit(self, key: PageKey) -> None:
        self._place(key, Priority.NORMAL)

    def on_hit(self, key: PageKey) -> None:
        level = self._priority_of.get(key)
        if level is None:
            # Defensive: a hit on an untracked page means the pool and the
            # policy disagree about residency.
            raise KeyError(f"hit on page {key} not tracked by policy")
        self._levels[level].move_to_end(key)

    def on_release(self, key: PageKey, priority: Priority) -> None:
        current = self._priority_of.get(key)
        if current is None:
            raise KeyError(f"release of page {key} not tracked by policy")
        if current is priority:
            self._levels[current].move_to_end(key)
        else:
            del self._levels[current][key]
            self._place(key, priority)

    def choose_victim(self, evictable: EvictablePredicate) -> Optional[PageKey]:
        for level in sorted(Priority):
            for key in self._levels[level]:
                if evictable(key):
                    return key
        return None

    def on_evict(self, key: PageKey) -> None:
        level = self._priority_of.pop(key, None)
        if level is not None:
            self._levels[level].pop(key, None)

    def _place(self, key: PageKey, priority: Priority) -> None:
        self._levels[priority][key] = None
        self._levels[priority].move_to_end(key)
        self._priority_of[key] = priority

    def level_sizes(self) -> Dict[Priority, int]:
        """Number of tracked pages per priority level (for tests/metrics)."""
        return {level: len(order) for level, order in self._levels.items()}

    def __len__(self) -> int:
        return len(self._priority_of)
