"""LRU-K replacement (O'Neil, O'Neil & Weikum, SIGMOD 1993).

Tracks the last K reference times of each page on a logical clock and
evicts the page whose K-th most recent reference lies furthest in the
past.  Pages with fewer than K references have an infinite backward
K-distance and are evicted first, oldest last-reference first — this is
what makes LRU-K scan resistant.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional

from repro.buffer.page import PageKey
from repro.buffer.replacement.base import EvictablePredicate, ReplacementPolicy


class LruKPolicy(ReplacementPolicy):
    """Backward K-distance victim selection on a logical clock."""

    name = "lru-k"

    def __init__(self, k: int = 2):
        if k < 1:
            raise ValueError(f"LRU-K needs k >= 1, got {k}")
        self.k = k
        self._history: Dict[PageKey, Deque[int]] = {}
        self._clock = 0

    def _touch(self, key: PageKey) -> None:
        self._clock += 1
        history = self._history.setdefault(key, deque(maxlen=self.k))
        history.append(self._clock)

    def on_admit(self, key: PageKey) -> None:
        self._touch(key)

    def on_hit(self, key: PageKey) -> None:
        self._touch(key)

    def choose_victim(self, evictable: EvictablePredicate) -> Optional[PageKey]:
        best_key: Optional[PageKey] = None
        # Order: (has_k_references, kth_recent_time, last_time) — pages
        # lacking K references sort before all others, then by oldest.
        best_rank = None
        for key, history in self._history.items():
            if not evictable(key):
                continue
            has_k = len(history) >= self.k
            kth = history[0] if has_k else 0
            rank = (has_k, kth, history[-1])
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_key = key
        return best_key

    def on_evict(self, key: PageKey) -> None:
        self._history.pop(key, None)
