"""Victim-selection policies and their registry."""

from __future__ import annotations

from typing import Optional

from repro.buffer.replacement.arc import ArcPolicy
from repro.buffer.replacement.base import ReplacementPolicy
from repro.buffer.replacement.clock import ClockPolicy
from repro.buffer.replacement.lfu import LfuPolicy
from repro.buffer.replacement.lru import FifoPolicy, LruPolicy, MruPolicy
from repro.buffer.replacement.lirs import LirsPolicy
from repro.buffer.replacement.lrfu import LrfuPolicy
from repro.buffer.replacement.lru_k import LruKPolicy
from repro.buffer.replacement.pbm import PbmPolicy
from repro.buffer.replacement.priority_lru import PriorityLruPolicy
from repro.buffer.replacement.two_q import TwoQPolicy

_POLICY_NAMES = (
    "priority-lru",
    "lru",
    "mru",
    "fifo",
    "clock",
    "lru-k",
    "2q",
    "lfu",
    "lrfu",
    "lirs",
    "arc",
    "pbm",
)


def make_policy(name: str, capacity: Optional[int] = None) -> ReplacementPolicy:
    """Construct a replacement policy by registry name.

    ``capacity`` is required for policies that size internal queues from
    the pool size (2Q, ARC) and ignored by the rest.
    """
    normalized = name.lower()
    if normalized == "priority-lru":
        return PriorityLruPolicy()
    if normalized == "lru":
        return LruPolicy()
    if normalized == "mru":
        return MruPolicy()
    if normalized == "fifo":
        return FifoPolicy()
    if normalized == "clock":
        return ClockPolicy()
    if normalized in ("lru-k", "lru2", "lru-2"):
        return LruKPolicy(k=2)
    if normalized == "2q":
        if capacity is None:
            raise ValueError("2Q policy requires the pool capacity")
        return TwoQPolicy(capacity)
    if normalized == "lfu":
        return LfuPolicy()
    if normalized == "lrfu":
        return LrfuPolicy()
    if normalized == "lirs":
        if capacity is None:
            raise ValueError("LIRS policy requires the pool capacity")
        return LirsPolicy(capacity)
    if normalized == "arc":
        if capacity is None:
            raise ValueError("ARC policy requires the pool capacity")
        return ArcPolicy(capacity)
    if normalized == "pbm":
        # Degrades to LRU until Database.open binds the scan registry.
        return PbmPolicy()
    raise ValueError(f"unknown replacement policy {name!r}; known: {_POLICY_NAMES}")


__all__ = [
    "ArcPolicy",
    "ClockPolicy",
    "FifoPolicy",
    "LfuPolicy",
    "LirsPolicy",
    "LrfuPolicy",
    "LruKPolicy",
    "LruPolicy",
    "MruPolicy",
    "PbmPolicy",
    "PriorityLruPolicy",
    "ReplacementPolicy",
    "TwoQPolicy",
    "make_policy",
]
