"""Replacement-policy interface.

The pool tells the policy about page lifecycle events (admit / hit /
release / evict); when the pool needs a free frame it asks the policy to
:meth:`~ReplacementPolicy.choose_victim` among currently evictable pages.
Policies never see pin counts or I/O — that separation mirrors the paper's
"caching system as a black box" requirement and lets every policy be unit
tested without a pool.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Optional

from repro.buffer.page import PageKey, Priority

EvictablePredicate = Callable[[PageKey], bool]


class ReplacementPolicy(ABC):
    """Abstract victim-selection policy."""

    #: Short registry name; subclasses override.
    name = "abstract"

    @abstractmethod
    def on_admit(self, key: PageKey) -> None:
        """A page has been brought into the pool."""

    @abstractmethod
    def on_hit(self, key: PageKey) -> None:
        """A resident page was accessed (fixed) again."""

    def on_release(self, key: PageKey, priority: Priority) -> None:
        """A page was unfixed with a priority hint.

        Most classic policies ignore the hint; the DB2-style
        :class:`~repro.buffer.replacement.priority_lru.PriorityLruPolicy`
        is the one that honours it.
        """

    @abstractmethod
    def choose_victim(self, evictable: EvictablePredicate) -> Optional[PageKey]:
        """Pick a page to evict among those for which ``evictable(key)``.

        Returns None when no tracked page is evictable (the pool then
        raises an overcommit error).  Must not mutate policy state for
        pages it merely inspected.
        """

    @abstractmethod
    def on_evict(self, key: PageKey) -> None:
        """The pool has discarded the page chosen by :meth:`choose_victim`."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"
