"""LRFU replacement (Lee et al., IEEE ToC 2001).

LRFU subsumes LRU and LFU through a single decay parameter λ: each page
carries a Combined Recency and Frequency (CRF) value that gains 1.0 on
every access and decays by 2^(-λ·Δt) over logical time.  λ → 0 behaves
like LFU (history dominates); large λ behaves like LRU (only the last
access matters).  The victim is the page with the smallest current CRF.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.buffer.page import PageKey
from repro.buffer.replacement.base import EvictablePredicate, ReplacementPolicy


class LrfuPolicy(ReplacementPolicy):
    """Combined recency/frequency victim selection."""

    name = "lrfu"

    def __init__(self, lam: float = 0.01):
        if not 0.0 < lam <= 1.0:
            raise ValueError(f"LRFU lambda must be in (0, 1], got {lam}")
        self.lam = lam
        # key -> (crf at last access, logical time of last access)
        self._crf: Dict[PageKey, Tuple[float, int]] = {}
        self._clock = 0

    def _decay(self, delta: int) -> float:
        return 2.0 ** (-self.lam * delta)

    def _touch(self, key: PageKey) -> None:
        self._clock += 1
        crf, last = self._crf.get(key, (0.0, self._clock))
        self._crf[key] = (1.0 + crf * self._decay(self._clock - last), self._clock)

    def on_admit(self, key: PageKey) -> None:
        self._touch(key)

    def on_hit(self, key: PageKey) -> None:
        self._touch(key)

    def current_crf(self, key: PageKey) -> float:
        """The page's CRF decayed to the current logical time."""
        crf, last = self._crf[key]
        return crf * self._decay(self._clock - last)

    def choose_victim(self, evictable: EvictablePredicate) -> Optional[PageKey]:
        best_key: Optional[PageKey] = None
        best_value = float("inf")
        for key in self._crf:
            if not evictable(key):
                continue
            value = self.current_crf(key)
            if value < best_value:
                best_value = value
                best_key = key
        return best_key

    def on_evict(self, key: PageKey) -> None:
        self._crf.pop(key, None)
