"""ARC replacement (Megiddo & Modha, FAST 2003).

Adaptive Replacement Cache keeps two resident LRU lists — T1 (seen once
recently) and T2 (seen at least twice) — plus ghost lists B1/B2 of
recently evicted identities.  A hit in B1 grows the target size ``p`` of
T1; a hit in B2 shrinks it, letting the cache continuously tune itself
between recency and frequency.

This implementation adapts the textbook algorithm to the pool's
policy interface: the pool owns residency and pinning, so ARC here only
ranks victims (preferring T1 when |T1| > p) and maintains its lists on the
admit/hit/evict notifications it receives.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.buffer.page import PageKey
from repro.buffer.replacement.base import EvictablePredicate, ReplacementPolicy


class ArcPolicy(ReplacementPolicy):
    """Adaptive Replacement Cache victim ranking."""

    name = "arc"

    def __init__(self, capacity: int):
        if capacity < 2:
            raise ValueError(f"ARC needs capacity >= 2, got {capacity}")
        self.capacity = capacity
        self.p = 0.0  # target size of T1, adapted on ghost hits
        self._t1: "OrderedDict[PageKey, None]" = OrderedDict()
        self._t2: "OrderedDict[PageKey, None]" = OrderedDict()
        self._b1: "OrderedDict[PageKey, None]" = OrderedDict()
        self._b2: "OrderedDict[PageKey, None]" = OrderedDict()

    def on_admit(self, key: PageKey) -> None:
        if key in self._b1:
            # Ghost hit in B1: recency is winning; grow T1's target.
            delta = max(1.0, len(self._b2) / max(1, len(self._b1)))
            self.p = min(float(self.capacity), self.p + delta)
            del self._b1[key]
            self._promote_t2(key)
        elif key in self._b2:
            # Ghost hit in B2: frequency is winning; shrink T1's target.
            delta = max(1.0, len(self._b1) / max(1, len(self._b2)))
            self.p = max(0.0, self.p - delta)
            del self._b2[key]
            self._promote_t2(key)
        else:
            self._t1[key] = None
            self._t1.move_to_end(key)
        self._trim_ghosts()

    def on_hit(self, key: PageKey) -> None:
        if key in self._t1:
            del self._t1[key]
            self._promote_t2(key)
        elif key in self._t2:
            self._t2.move_to_end(key)

    def choose_victim(self, evictable: EvictablePredicate) -> Optional[PageKey]:
        prefer_t1 = len(self._t1) >= 1 and len(self._t1) > self.p
        first, second = (self._t1, self._t2) if prefer_t1 else (self._t2, self._t1)
        for queue in (first, second):
            for key in queue:
                if evictable(key):
                    return key
        return None

    def on_evict(self, key: PageKey) -> None:
        if key in self._t1:
            del self._t1[key]
            self._b1[key] = None
            self._b1.move_to_end(key)
        elif key in self._t2:
            del self._t2[key]
            self._b2[key] = None
            self._b2.move_to_end(key)
        self._trim_ghosts()

    def _promote_t2(self, key: PageKey) -> None:
        self._t2[key] = None
        self._t2.move_to_end(key)

    def _trim_ghosts(self) -> None:
        # Standard ARC bounds: |T1|+|B1| <= c and total directory <= 2c.
        while len(self._t1) + len(self._b1) > self.capacity and self._b1:
            self._b1.popitem(last=False)
        while (
            len(self._t1) + len(self._t2) + len(self._b1) + len(self._b2)
            > 2 * self.capacity
            and self._b2
        ):
            self._b2.popitem(last=False)

    def list_sizes(self) -> dict:
        """Sizes of T1/T2/B1/B2 plus the adaptation target (for tests)."""
        return {
            "t1": len(self._t1),
            "t2": len(self._t2),
            "b1": len(self._b1),
            "b2": len(self._b2),
            "p": self.p,
        }
