"""CLOCK (second-chance) replacement."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.buffer.page import PageKey
from repro.buffer.replacement.base import EvictablePredicate, ReplacementPolicy


class ClockPolicy(ReplacementPolicy):
    """Second-chance: a circular sweep clears reference bits until it
    finds an unreferenced, evictable page."""

    name = "clock"

    def __init__(self) -> None:
        self._ring: List[PageKey] = []
        self._ref: Dict[PageKey, bool] = {}
        self._hand = 0

    def on_admit(self, key: PageKey) -> None:
        self._ring.append(key)
        self._ref[key] = True

    def on_hit(self, key: PageKey) -> None:
        if key in self._ref:
            self._ref[key] = True

    def choose_victim(self, evictable: EvictablePredicate) -> Optional[PageKey]:
        if not self._ring:
            return None
        # Two full sweeps guarantee termination: the first may only clear
        # reference bits, the second must find any evictable page.
        for _ in range(2 * len(self._ring)):
            if self._hand >= len(self._ring):
                self._hand = 0
            key = self._ring[self._hand]
            if evictable(key):
                if self._ref.get(key, False):
                    self._ref[key] = False
                else:
                    return key
            self._hand += 1
        return None

    def on_evict(self, key: PageKey) -> None:
        if key in self._ref:
            del self._ref[key]
            index = self._ring.index(key)
            self._ring.pop(index)
            if index < self._hand:
                self._hand -= 1
            if self._hand >= len(self._ring):
                self._hand = 0
