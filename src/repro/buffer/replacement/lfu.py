"""LFU replacement (frequency-based, Robinson & Devarakonda 1990)."""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.buffer.page import PageKey
from repro.buffer.replacement.base import EvictablePredicate, ReplacementPolicy


class LfuPolicy(ReplacementPolicy):
    """Evict the least frequently used page; ties broken least recently."""

    name = "lfu"

    def __init__(self) -> None:
        # key -> (access_count, last_touch_logical_time)
        self._stats: Dict[PageKey, Tuple[int, int]] = {}
        self._clock = 0

    def _touch(self, key: PageKey) -> None:
        self._clock += 1
        count, _ = self._stats.get(key, (0, 0))
        self._stats[key] = (count + 1, self._clock)

    def on_admit(self, key: PageKey) -> None:
        self._touch(key)

    def on_hit(self, key: PageKey) -> None:
        self._touch(key)

    def choose_victim(self, evictable: EvictablePredicate) -> Optional[PageKey]:
        best_key: Optional[PageKey] = None
        best_rank: Optional[Tuple[int, int]] = None
        for key, rank in self._stats.items():
            if not evictable(key):
                continue
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_key = key
        return best_key

    def on_evict(self, key: PageKey) -> None:
        self._stats.pop(key, None)
