"""LIRS replacement (Jiang & Zhang, SIGMETRICS 2002).

LIRS ranks pages by *Inter-Reference Recency* (IRR): pages re-referenced
within a short window are LIR ("low IRR", the protected working set);
everything else is HIR and evicted first.  The structure is the classic
two-part one:

* the **stack S** orders recently seen pages (LIR, resident HIR, and
  non-resident HIR ghosts) by recency; a hit on an entry *in* S proves a
  small IRR and promotes the page to LIR;
* the **queue Q** lists resident HIR pages in FIFO order — the eviction
  candidates.

The stack is pruned so its bottom entry is always LIR; demotions at the
bottom balance promotions.  This adaptation keeps the textbook algorithm
but exposes victims through the pool's evictable-filtered interface.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.buffer.page import PageKey
from repro.buffer.replacement.base import EvictablePredicate, ReplacementPolicy


class LirsPolicy(ReplacementPolicy):
    """Low Inter-reference Recency Set replacement."""

    name = "lirs"

    def __init__(self, capacity: int, hir_fraction: float = 0.1):
        if capacity < 2:
            raise ValueError(f"LIRS needs capacity >= 2, got {capacity}")
        if not 0.0 < hir_fraction < 1.0:
            raise ValueError(f"hir_fraction must be in (0, 1), got {hir_fraction}")
        self.capacity = capacity
        self.lir_capacity = max(1, int(capacity * (1.0 - hir_fraction)))
        # Stack S: key -> status ("lir" | "hir" | "ghost"), recency order
        # (oldest first, top of stack = most recent = last).
        self._stack: "OrderedDict[PageKey, str]" = OrderedDict()
        # Queue Q: resident HIR pages in FIFO order.
        self._queue: "OrderedDict[PageKey, None]" = OrderedDict()
        self._lir_count = 0

    # ------------------------------------------------------------------
    # Lifecycle notifications
    # ------------------------------------------------------------------

    def on_admit(self, key: PageKey) -> None:
        status = self._stack.get(key)
        if status == "ghost":
            # Re-reference within the stack window: small IRR -> LIR.
            self._set_lir(key)
            self._rebalance()
        elif self._lir_count < self.lir_capacity:
            # Cold start: fill the LIR set first.
            self._set_lir(key)
        else:
            self._stack[key] = "hir"
            self._stack.move_to_end(key)
            self._queue[key] = None
            self._queue.move_to_end(key)
        self._prune()

    def on_hit(self, key: PageKey) -> None:
        status = self._stack.get(key)
        if status == "lir":
            self._stack.move_to_end(key)
        elif status == "hir":
            # Resident HIR hit while still in S: promote to LIR.
            self._queue.pop(key, None)
            self._set_lir(key)
            self._rebalance()
        else:
            # Resident HIR whose stack entry was pruned away: it stays
            # HIR but re-enters the stack top and refreshes its Q slot.
            if key in self._queue:
                self._stack[key] = "hir"
                self._stack.move_to_end(key)
                self._queue.move_to_end(key)
        self._prune()

    def choose_victim(self, evictable: EvictablePredicate) -> Optional[PageKey]:
        for key in self._queue:
            if evictable(key):
                return key
        # No evictable HIR page: fall back to LIR pages, coldest first.
        for key, status in self._stack.items():
            if status == "lir" and evictable(key):
                return key
        return None

    def on_evict(self, key: PageKey) -> None:
        if key in self._queue:
            del self._queue[key]
            if key in self._stack:
                # Keep a ghost so a prompt re-reference proves a low IRR.
                self._stack[key] = "ghost"
        elif self._stack.get(key) == "lir":
            self._lir_count -= 1
            del self._stack[key]
        self._prune()
        self._trim_stack()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _set_lir(self, key: PageKey) -> None:
        if self._stack.get(key) != "lir":
            self._lir_count += 1
        self._stack[key] = "lir"
        self._stack.move_to_end(key)

    def _rebalance(self) -> None:
        """Demote bottom LIR pages while the LIR set exceeds its budget."""
        while self._lir_count > self.lir_capacity:
            bottom_key = next(iter(self._stack))
            status = self._stack.pop(bottom_key)
            if status == "lir":
                self._lir_count -= 1
                self._queue[bottom_key] = None
                self._queue.move_to_end(bottom_key)
            # HIR/ghost entries at the bottom simply fall off (pruning).
        self._prune()

    def _prune(self) -> None:
        """Keep the stack bottom LIR (the LIRS invariant)."""
        while self._stack:
            bottom_key = next(iter(self._stack))
            if self._stack[bottom_key] == "lir":
                break
            del self._stack[bottom_key]

    def _trim_stack(self) -> None:
        """Bound ghost history to ~2x capacity."""
        limit = 2 * self.capacity
        while len(self._stack) > limit:
            for key, status in list(self._stack.items()):
                if status == "ghost":
                    del self._stack[key]
                    break
            else:
                break

    def sizes(self) -> dict:
        """Structure sizes for tests."""
        ghosts = sum(1 for s in self._stack.values() if s == "ghost")
        return {
            "lir": self._lir_count,
            "resident_hir": len(self._queue),
            "ghosts": ghosts,
            "stack": len(self._stack),
        }
