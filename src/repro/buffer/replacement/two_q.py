"""2Q replacement (Johnson & Shasha, VLDB 1994).

Simplified full version: newly admitted pages enter the FIFO queue A1in.
On eviction from A1in, their identity is remembered in the ghost queue
A1out.  A page re-admitted while remembered in A1out, or hit while in
A1in long enough to prove reuse, is promoted to the main LRU queue Am.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.buffer.page import PageKey
from repro.buffer.replacement.base import EvictablePredicate, ReplacementPolicy


class TwoQPolicy(ReplacementPolicy):
    """A1in (FIFO) + A1out (ghosts) + Am (LRU)."""

    name = "2q"

    def __init__(self, capacity: int, kin_fraction: float = 0.25,
                 kout_fraction: float = 0.5):
        if capacity < 2:
            raise ValueError(f"2Q needs capacity >= 2, got {capacity}")
        if not 0.0 < kin_fraction < 1.0:
            raise ValueError(f"kin_fraction must be in (0, 1), got {kin_fraction}")
        self.capacity = capacity
        self.kin = max(1, int(capacity * kin_fraction))
        self.kout = max(1, int(capacity * kout_fraction))
        self._a1in: "OrderedDict[PageKey, None]" = OrderedDict()
        self._a1out: "OrderedDict[PageKey, None]" = OrderedDict()
        self._am: "OrderedDict[PageKey, None]" = OrderedDict()

    def on_admit(self, key: PageKey) -> None:
        if key in self._a1out:
            # Ghost hit: the page proved reuse across its first residency.
            del self._a1out[key]
            self._am[key] = None
            self._am.move_to_end(key)
        else:
            self._a1in[key] = None
            self._a1in.move_to_end(key)

    def on_hit(self, key: PageKey) -> None:
        if key in self._am:
            self._am.move_to_end(key)
        # Hits in A1in deliberately do not reorder (2Q's correlated-reference
        # protection): the page proves reuse only via A1out.

    def choose_victim(self, evictable: EvictablePredicate) -> Optional[PageKey]:
        # Prefer evicting from A1in once it exceeds its allotment, else Am.
        if len(self._a1in) > self.kin:
            for key in self._a1in:
                if evictable(key):
                    return key
        for key in self._am:
            if evictable(key):
                return key
        for key in self._a1in:
            if evictable(key):
                return key
        return None

    def on_evict(self, key: PageKey) -> None:
        if key in self._a1in:
            del self._a1in[key]
            self._a1out[key] = None
            self._a1out.move_to_end(key)
            while len(self._a1out) > self.kout:
                self._a1out.popitem(last=False)
        else:
            self._am.pop(key, None)

    def queue_sizes(self) -> dict:
        """Sizes of the three queues (for tests)."""
        return {"a1in": len(self._a1in), "a1out": len(self._a1out), "am": len(self._am)}
