"""Bufferpool with DB2-style release-with-priority semantics.

The paper treats the caching subsystem as a black box that exposes one
extra knob: when a scan finishes with a page, it *releases* it with a
priority hint, and the victim-selection policy prefers to evict
low-priority pages first.  This package provides that pool
(:class:`~repro.buffer.pool.BufferPool`), the
:class:`~repro.buffer.page.Priority` hint enum, and a family of pluggable
replacement policies (priority-aware LRU as the DB2 stand-in, plus the
related-work policies: LRU, MRU, FIFO, CLOCK, LRU-K, 2Q, LFU, ARC) used by
the policy-comparison ablation.
"""

from repro.buffer.page import Frame, PageKey, Priority
from repro.buffer.pool import BufferPool, BufferPoolError, PoolExhausted
from repro.buffer.stats import BufferStats
from repro.buffer.replacement import (
    ArcPolicy,
    ClockPolicy,
    FifoPolicy,
    LfuPolicy,
    LirsPolicy,
    LrfuPolicy,
    LruKPolicy,
    LruPolicy,
    MruPolicy,
    PbmPolicy,
    PriorityLruPolicy,
    ReplacementPolicy,
    TwoQPolicy,
    make_policy,
)

__all__ = [
    "ArcPolicy",
    "BufferPool",
    "BufferPoolError",
    "BufferStats",
    "ClockPolicy",
    "FifoPolicy",
    "Frame",
    "LfuPolicy",
    "LirsPolicy",
    "LrfuPolicy",
    "LruKPolicy",
    "LruPolicy",
    "MruPolicy",
    "PageKey",
    "PbmPolicy",
    "PoolExhausted",
    "Priority",
    "PriorityLruPolicy",
    "ReplacementPolicy",
    "TwoQPolicy",
    "make_policy",
]
