"""The cluster service: K replica simulations behind one shard router.

:class:`ClusterService` is the fleet-scale analogue of
:class:`~repro.service.service.QueryService`: it renders the cluster's
offered load once (:func:`~repro.workloads.loadgen.generate_load`),
routes every arrival through the deterministic consistent-hash router
(:mod:`repro.cluster.topology`), then runs one full admission-controlled
service simulation per replica — each on its own database, bufferpool,
sharing policy, and fault injector — and reduces the per-replica
results into one fleet-wide :class:`ClusterResult`.

Determinism: the load plan derives from ``seed`` via SHA-256, routing
is a pure function of the plan and the :class:`ClusterSpec`, and every
replica's database seed derives from ``(seed, replica_id)`` — so the
whole run is a pure function of ``(ClusterSpec, settings)`` and two
runs with the same inputs produce byte-identical per-replica and
fleet-wide metrics.

Fault clauses with ``replica=`` pinning apply only to the matching
replica; because each replica owns a private injector RNG seeded from
its own derived seed, killing one replica's scans never perturbs the
draws — or the digests — of the others.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.cluster.spec import ClusterSpec
from repro.cluster.topology import ClusterRouter
from repro.core.config import SharingConfig
from repro.experiments.harness import ExperimentSettings, build_database
from repro.metrics.report import (
    fleet_aggregate_row,
    format_service_table,
    format_table,
)
from repro.service.metrics import ServiceResult
from repro.service.service import QueryService
from repro.service.spec import ServiceClass, ServiceSpec
from repro.workloads.arrivals import ArrivalPlan
from repro.workloads.loadgen import LoadPlan, UserClass, generate_load


def derive_replica_seed(base_seed: int, replica_id: int) -> int:
    """Stable per-replica database seed (SHA-256, platform-proof)."""
    payload = f"repro.cluster:{base_seed}:replica:{replica_id}".encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big") % (2 ** 63)


def derive_loadgen_seed(base_seed: int) -> int:
    """Stable seed for the cluster's load generator."""
    payload = f"repro.cluster:{base_seed}:loadgen".encode()
    return int.from_bytes(hashlib.sha256(payload).digest()[:8], "big") % (2 ** 63)


def _service_class(cls: UserClass) -> ServiceClass:
    """The per-replica service class mirroring one user class.

    Arrival parameters are placeholders — the replica receives an
    explicit pre-routed :class:`ArrivalPlan`, so only the queueing
    fields (weight, patience, SLO, concurrency cap) matter.
    """
    return ServiceClass(
        name=cls.name,
        weight=cls.weight,
        max_mpl=cls.max_mpl,
        latency_slo=cls.latency_slo,
        patience=cls.patience,
        arrival="poisson",
        rate=1.0,
        query_names=cls.templates,
    )


@dataclass
class ReplicaResult:
    """One replica's service result plus its routing share."""

    replica_id: int
    service: ServiceResult
    arrivals_routed: int
    shards_touched: int

    def metrics(self) -> Dict[str, Any]:
        return {
            "replica_id": self.replica_id,
            "arrivals_routed": self.arrivals_routed,
            "shards_touched": self.shards_touched,
            "service": self.service.metrics(),
        }


@dataclass
class ClusterResult:
    """Everything measured over one cluster run."""

    scenario: str
    spec_summary: Dict[str, Any]
    replicas: List[ReplicaResult] = field(default_factory=list)
    router: Dict[str, Any] = field(default_factory=dict)
    #: Arrivals the load generator produced (== sum of routed counts).
    n_offered: int = 0
    distinct_users: int = 0

    # ------------------------------------------------------------------
    # Fleet reductions
    # ------------------------------------------------------------------

    @property
    def n_arrived(self) -> int:
        return sum(r.service.n_arrived for r in self.replicas)

    @property
    def n_completed(self) -> int:
        return sum(r.service.n_completed for r in self.replicas)

    @property
    def n_abandoned(self) -> int:
        return sum(r.service.n_abandoned for r in self.replicas)

    @property
    def drained(self) -> bool:
        return all(r.service.drained for r in self.replicas)

    @property
    def makespan(self) -> float:
        """Fleet makespan: the slowest replica's end time."""
        return max((r.service.end_time for r in self.replicas), default=0.0)

    @property
    def fleet_throughput(self) -> float:
        """Completions per simulated second across the whole fleet."""
        span = self.makespan
        return self.n_completed / span if span > 0 else 0.0

    @property
    def pages_read(self) -> int:
        return sum(r.service.pages_read for r in self.replicas)

    @property
    def fleet_miss_rate(self) -> float:
        """Completion-weighted mean of the per-replica miss rates."""
        weights = [max(1, r.service.n_completed) for r in self.replicas]
        total = sum(weights)
        if not total:
            return 0.0
        return sum(
            w * r.service.buffer_miss_rate
            for w, r in zip(weights, self.replicas)
        ) / total

    @property
    def fleet_slo_attainment(self) -> Optional[float]:
        """Completion-weighted SLO attainment over SLO-bearing classes."""
        weighted = 0.0
        completions = 0
        for replica in self.replicas:
            for cls in replica.service.classes:
                if cls.slo_attainment is None or cls.n_completed == 0:
                    continue
                weighted += cls.slo_attainment * cls.n_completed
                completions += cls.n_completed
        if completions == 0:
            return None
        return weighted / completions

    def fleet_class_rows(self) -> List[Dict[str, Any]]:
        """Per-class rows aggregated across replicas, plus a FLEET total.

        The last row aggregates every class on every replica, so the
        report renders it set off below the per-class rows
        (``fleet_row=True``).
        """
        by_name: Dict[str, List[Dict[str, Any]]] = {}
        order: List[str] = []
        all_rows: List[Dict[str, Any]] = []
        for replica in self.replicas:
            for cls in replica.service.classes:
                if cls.name not in by_name:
                    by_name[cls.name] = []
                    order.append(cls.name)
                row = cls.as_dict()
                by_name[cls.name].append(row)
                all_rows.append(row)
        rows = [
            fleet_aggregate_row(by_name[name], label=name)
            for name in order
        ]
        rows.append(fleet_aggregate_row(all_rows, label="FLEET"))
        return rows

    # ------------------------------------------------------------------
    # Uniform result protocol
    # ------------------------------------------------------------------

    def metrics(self) -> Dict[str, Any]:
        """JSON-safe dict — the unit of caching and digesting."""
        return {
            "scenario": self.scenario,
            "spec": self.spec_summary,
            "n_offered": self.n_offered,
            "distinct_users": self.distinct_users,
            "n_arrived": self.n_arrived,
            "n_completed": self.n_completed,
            "n_abandoned": self.n_abandoned,
            "drained": self.drained,
            "makespan": self.makespan,
            "fleet_throughput": self.fleet_throughput,
            "fleet_miss_rate": self.fleet_miss_rate,
            "fleet_slo_attainment": self.fleet_slo_attainment,
            "pages_read": self.pages_read,
            "router": self.router,
            "replicas": {
                str(r.replica_id): r.metrics() for r in self.replicas
            },
        }

    def render(self) -> str:
        lines = [
            f"cluster {self.scenario}: {self.spec_summary['n_replicas']} "
            f"replicas (rf={self.spec_summary['replication_factor']}, "
            f"{self.spec_summary['balance']}), "
            f"{self.spec_summary['n_users']} users, "
            f"{self.n_offered} arrivals from {self.distinct_users} "
            f"distinct users",
            f"fleet: {self.n_completed}/{self.n_arrived} completed, "
            f"{self.n_abandoned} abandoned, "
            f"drained={'yes' if self.drained else 'NO'}, "
            f"makespan {self.makespan:.3f}s, "
            f"throughput {self.fleet_throughput:.3f} q/s, "
            f"miss rate {self.fleet_miss_rate:.3f}",
            "",
        ]
        rows = []
        for replica in self.replicas:
            service = replica.service
            rows.append([
                f"r{replica.replica_id}", replica.arrivals_routed,
                replica.shards_touched, service.n_completed,
                service.n_abandoned, service.mpl_final,
                service.buffer_miss_rate, service.pages_read,
                service.end_time,
            ])
        rows.append([
            "fleet", sum(r.arrivals_routed for r in self.replicas),
            sum(r.shards_touched for r in self.replicas),
            self.n_completed, self.n_abandoned, "-",
            self.fleet_miss_rate, self.pages_read, self.makespan,
        ])
        lines.append(format_table(
            ["replica", "routed", "shards", "done", "abandoned", "mpl",
             "miss_rate", "pages", "end (s)"],
            rows,
        ))
        lines.append("")
        lines.append("fleet-wide per-class metrics (aggregated over replicas):")
        lines.append(format_service_table(
            self.fleet_class_rows(),
            fleet_row=True,
        ))
        return "\n".join(lines)


@dataclass
class ClusterScalingResult:
    """The same offered load replayed over a growing replica fleet.

    The load plan is fleet-size-independent (generation precedes
    routing), so every point serves the identical arrival set and the
    fleet-throughput curve isolates the scaling effect of sharding.
    """

    scenario: str
    #: The swept axis, as a :meth:`Scannable.describe` dict.
    axis: Dict[str, Any]
    #: One cluster run per axis value, in sweep order.
    points: List[ClusterResult] = field(default_factory=list)

    def fleet_throughputs(self) -> Dict[str, float]:
        """Replica count (as str, JSON-safe) → fleet throughput."""
        return {
            str(point.spec_summary["n_replicas"]): point.fleet_throughput
            for point in self.points
        }

    @property
    def monotone_throughput(self) -> bool:
        """Whether fleet throughput never drops as replicas are added."""
        values = [point.fleet_throughput for point in self.points]
        return all(b >= a for a, b in zip(values, values[1:]))

    def metrics(self) -> Dict[str, Any]:
        """JSON-safe dict — the unit of caching and digesting."""
        return {
            "scenario": self.scenario,
            "axis": self.axis,
            "fleet_throughput": self.fleet_throughputs(),
            "monotone_throughput": self.monotone_throughput,
            "points": {
                str(point.spec_summary["n_replicas"]): point.metrics()
                for point in self.points
            },
        }

    def render(self) -> str:
        rows = []
        for point in self.points:
            rows.append([
                point.spec_summary["n_replicas"], point.n_arrived,
                point.n_completed, point.n_abandoned,
                point.makespan, point.fleet_throughput,
                point.fleet_miss_rate, point.pages_read,
            ])
        trend = (
            "monotone non-decreasing"
            if self.monotone_throughput
            else "NOT monotone"
        )
        return "\n".join([
            f"cluster {self.scenario}: identical load over a growing fleet "
            f"({self.axis.get('name', 'axis')} = "
            f"{self.axis.get('sequence', self.axis)})",
            f"fleet throughput is {trend} in replica count",
            "",
            format_table(
                ["replicas", "arrived", "done", "abandoned",
                 "makespan (s)", "fleet q/s", "miss_rate", "pages"],
                rows,
            ),
        ])


class ClusterService:
    """One deterministic cluster run: generate → route → simulate K times."""

    def __init__(
        self,
        spec: ClusterSpec,
        settings: ExperimentSettings,
        scenario: str = "",
    ):
        self.spec = spec
        self.settings = settings
        self.scenario = scenario

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _route_plan(
        self, plan: LoadPlan, router: ClusterRouter
    ) -> List[Dict[str, ArrivalPlan]]:
        """Split the global load plan into per-replica arrival plans.

        Arrivals are routed in global time order (ties broken by class
        position, then sequence) so the router's least-loaded stats see
        the same history no matter how the per-class lists interleave.
        """
        merged: List[Tuple[float, int, int]] = []
        for class_index, class_plan in enumerate(plan.classes):
            for seq, arrival in enumerate(class_plan.arrivals):
                merged.append((arrival.time, class_index, seq))
        merged.sort()

        buckets: List[List[List]] = [
            [[] for _ in plan.classes] for _ in range(self.spec.n_replicas)
        ]
        for _, class_index, seq in merged:
            arrival = plan.classes[class_index].arrivals[seq]
            replica = router.route(arrival.table, arrival.user_id)
            buckets[replica][class_index].append(arrival)

        per_replica: List[Dict[str, ArrivalPlan]] = []
        for replica in range(self.spec.n_replicas):
            plans: Dict[str, ArrivalPlan] = {}
            for class_index, class_plan in enumerate(plan.classes):
                routed = buckets[replica][class_index]
                plans[class_plan.user_class.name] = ArrivalPlan(
                    queries=[a.query for a in routed],
                    arrival_times=[a.time for a in routed],
                )
            per_replica.append(plans)
        return per_replica

    # ------------------------------------------------------------------
    # Replica execution
    # ------------------------------------------------------------------

    def _replica_settings(self, replica_id: int) -> ExperimentSettings:
        overrides = self.spec.overrides_for(replica_id)
        return self.settings.with_(
            seed=derive_replica_seed(self.settings.seed, replica_id),
            **overrides,
        )

    def _run_replica(
        self,
        replica_id: int,
        arrival_plans: Dict[str, ArrivalPlan],
    ) -> ServiceResult:
        settings = self._replica_settings(replica_id)
        fault_plan = settings.fault_plan()
        if fault_plan is not None:
            fault_plan = fault_plan.for_replica(replica_id)
            if not fault_plan.faults:
                fault_plan = None
        sharing = settings.apply_sharing_overrides(SharingConfig())
        db = build_database(settings, sharing, fault_plan=fault_plan)
        service_spec = ServiceSpec(
            classes=tuple(
                _service_class(cls) for cls in self.spec.load.classes
            ),
            horizon=self.spec.load.horizon,
            controller=self.spec.controller,
            max_arrivals_per_class=self.spec.load.max_arrivals_per_class,
        )
        service = QueryService(
            db, service_spec,
            scenario=f"{self.scenario}/r{replica_id}",
            arrival_plans=arrival_plans,
        )
        return service.run()

    # ------------------------------------------------------------------
    # Run
    # ------------------------------------------------------------------

    def run(self) -> ClusterResult:
        """Drive the whole fleet to completion and reduce the results."""
        plan = generate_load(
            self.spec.load, seed=derive_loadgen_seed(self.settings.seed)
        )
        router = ClusterRouter(self.spec)
        per_replica_plans = self._route_plan(plan, router)
        shards_touched = router.shards_touched()

        replicas: List[ReplicaResult] = []
        for replica_id in range(self.spec.n_replicas):
            service_result = self._run_replica(
                replica_id, per_replica_plans[replica_id]
            )
            replicas.append(ReplicaResult(
                replica_id=replica_id,
                service=service_result,
                arrivals_routed=router.assigned[replica_id],
                shards_touched=shards_touched[replica_id],
            ))

        return ClusterResult(
            scenario=self.scenario,
            spec_summary=self.spec.describe(),
            replicas=replicas,
            router=router.stats(),
            n_offered=plan.n_arrivals,
            distinct_users=plan.distinct_users(),
        )
