"""The cluster layer: sharded multi-replica service simulations.

One :class:`~repro.cluster.spec.ClusterSpec` describes a whole fleet —
replica count, shard map, routing policy, admission controller, and a
templated user-population load (:mod:`repro.workloads.loadgen`).  The
:class:`~repro.cluster.service.ClusterService` renders the load once,
routes every arrival through a deterministic consistent-hash ring
(:mod:`repro.cluster.topology`), and runs one full single-node service
simulation per replica, reducing the results into fleet-wide metrics.
A run is a pure function of ``(ClusterSpec, seed)``.
"""

from repro.cluster.scenarios import (
    CLUSTER_SCENARIOS,
    build_cluster_spec,
    run_cluster_scenario,
    sv_cluster_scale,
    sv_cluster_skew,
    sv_cluster_steady,
)
from repro.cluster.service import (
    ClusterResult,
    ClusterScalingResult,
    ClusterService,
    ReplicaResult,
    derive_loadgen_seed,
    derive_replica_seed,
)
from repro.cluster.spec import ClusterSpec
from repro.cluster.topology import ClusterRouter, HashRing, ring_hash

__all__ = [
    "CLUSTER_SCENARIOS",
    "ClusterResult",
    "ClusterRouter",
    "ClusterScalingResult",
    "ClusterService",
    "ClusterSpec",
    "HashRing",
    "ReplicaResult",
    "build_cluster_spec",
    "derive_loadgen_seed",
    "derive_replica_seed",
    "ring_hash",
    "run_cluster_scenario",
    "sv_cluster_scale",
    "sv_cluster_skew",
    "sv_cluster_steady",
]
