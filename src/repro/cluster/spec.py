"""Declarative, hashable specification of one simulated cluster.

A :class:`ClusterSpec` pins everything a cluster run depends on — the
replica fleet shape, the shard map parameters, the routing policy, the
admission controller, and the offered load (a
:class:`~repro.workloads.loadgen.LoadSpec`) — so that a run is a pure
function of ``(ClusterSpec, seed)`` and can participate in the
experiment runner's content-addressed caching exactly like a
single-node :class:`~repro.service.spec.ServiceSpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Tuple

from repro.service.spec import ControllerConfig
from repro.workloads.loadgen import BALANCE_KINDS, LoadSpec


@dataclass(frozen=True)
class ClusterSpec:
    """One cluster configuration: fleet shape + shard map + load."""

    #: The offered load (classes, population, horizon).
    load: LoadSpec
    #: Replica fleet size (each replica is one full QueryService run).
    n_replicas: int = 2
    #: How many replicas hold each shard (1 = pure partitioning).
    replication_factor: int = 1
    #: Shards each table is split into; a ``(table, user)`` pair maps to
    #: shard ``user_id % shards_per_table`` of that table.
    shards_per_table: int = 8
    #: Virtual nodes per replica on the consistent-hash ring.
    ring_points: int = 64
    #: Replica choice among a shard's holders: ``preference`` (ring
    #: order) or ``least-loaded`` (cross-replica load stats tie-break).
    balance: str = "preference"
    #: Admission controller applied to every replica.
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    #: Per-replica ``ExperimentSettings`` field overrides, as a sorted
    #: tuple of ``(replica_id, ((field, value), ...))`` pairs — e.g.
    #: ``((1, (("pool_pages", 64),)),)`` shrinks replica 1's pool.
    replica_overrides: Tuple[Tuple[int, Tuple[Tuple[str, Any], ...]], ...] = ()

    def __post_init__(self) -> None:
        if self.n_replicas < 1:
            raise ValueError(f"n_replicas must be >= 1, got {self.n_replicas}")
        if not 1 <= self.replication_factor <= self.n_replicas:
            raise ValueError(
                f"replication_factor must be in [1, n_replicas], got "
                f"{self.replication_factor} with {self.n_replicas} replicas"
            )
        if self.shards_per_table < 1:
            raise ValueError(
                f"shards_per_table must be >= 1, got {self.shards_per_table}"
            )
        if self.ring_points < 1:
            raise ValueError(f"ring_points must be >= 1, got {self.ring_points}")
        if self.balance not in BALANCE_KINDS:
            raise ValueError(
                f"unknown balance {self.balance!r}; expected one of "
                f"{BALANCE_KINDS}"
            )
        for replica_id, _overrides in self.replica_overrides:
            if not 0 <= replica_id < self.n_replicas:
                raise ValueError(
                    f"replica_overrides names replica {replica_id}, but the "
                    f"cluster has {self.n_replicas} replicas"
                )

    def overrides_for(self, replica_id: int) -> Dict[str, Any]:
        """The settings overrides pinned to one replica (possibly empty)."""
        merged: Dict[str, Any] = {}
        for rid, overrides in self.replica_overrides:
            if rid == replica_id:
                merged.update(dict(overrides))
        return merged

    def describe(self) -> Dict[str, Any]:
        """JSON-safe summary for metrics dicts and reports."""
        return {
            "n_replicas": self.n_replicas,
            "replication_factor": self.replication_factor,
            "shards_per_table": self.shards_per_table,
            "ring_points": self.ring_points,
            "balance": self.balance,
            "n_users": self.load.n_users,
            "user_zipf": self.load.user_zipf,
            "horizon": self.load.horizon,
            "classes": [cls.name for cls in self.load.classes],
        }
