"""Named cluster scenarios, registered as ``sv-cluster-*`` experiments.

Like the single-node ``sv-*`` scenarios, rates and horizons are
calibrated in units of the estimated Q6 service time at the current
``scale`` (see :func:`repro.service.scenarios.estimated_query_seconds`),
so the offered load per replica is scale-invariant.  Population sizes
default to a million simulated users — the load generator renders only
the arrivals the horizon admits, so population size costs nothing; it
feeds the user-attribution skew, not the event count.

Per-class aggregate rates are expressed through the population algebra
of :class:`~repro.workloads.loadgen.LoadSpec`: giving every class
``share = rate_i`` and ``think_mean = n_users / Σ rate_i`` makes
``class_rate`` come out to exactly ``rate_i`` regardless of
``n_users``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.cluster.service import (
    ClusterResult,
    ClusterScalingResult,
    ClusterService,
)
from repro.cluster.spec import ClusterSpec
from repro.experiments.harness import ExperimentSettings
from repro.service.scenarios import _controller, estimated_query_seconds
from repro.workloads.loadgen import (
    ExplicitScan,
    LoadSpec,
    Scannable,
    UserClass,
)

#: scenario name -> one-line description (shown by ``cluster-sim --list``).
CLUSTER_SCENARIOS: Dict[str, str] = {
    "steady": "mixed interactive+reporting fleet at moderate load, rf=2, "
              "least-loaded routing",
    "skew": "zipf-skewed users hammering their favourite tables "
            "(hot-shard stress), rf=1",
    "scale": "identical load over 1 -> 2 -> 4 replicas "
             "(throughput must not drop)",
}

#: Default simulated population (overridable via --users).
DEFAULT_USERS = 1_000_000


def _rated_classes(
    rated: List[Tuple[UserClass, float]], n_users: int
) -> Tuple[Tuple[UserClass, ...], float]:
    """Bind desired aggregate rates onto user classes.

    Returns the rebuilt class tuple plus the shared ``think_mean``
    (``n_users / Σ rate``) so the :class:`LoadSpec` population algebra
    reproduces each class's rate exactly.
    """
    total_rate = sum(rate for _, rate in rated)
    think_mean = n_users / total_rate
    classes = tuple(
        UserClass(
            name=cls.name,
            share=rate,
            weight=cls.weight,
            max_mpl=cls.max_mpl,
            templates=cls.templates,
            table_zipf=cls.table_zipf,
            think_mean=think_mean,
            think_sigma=cls.think_sigma,
            patience=cls.patience,
            latency_slo=cls.latency_slo,
        )
        for cls, rate in rated
    )
    return classes, think_mean


def build_cluster_spec(name: str, settings: ExperimentSettings) -> ClusterSpec:
    """The :class:`ClusterSpec` for one named scenario at these settings.

    For ``scale`` this is the spec of the *first* sweep point; the
    experiment itself rebuilds the fleet per axis value.
    """
    if name not in CLUSTER_SCENARIOS:
        raise KeyError(
            f"unknown cluster scenario {name!r} "
            f"(known: {', '.join(sorted(CLUSTER_SCENARIOS))})"
        )
    cost = estimated_query_seconds(settings)
    n_users = settings.cluster_users or DEFAULT_USERS

    if name == "steady":
        classes, _ = _rated_classes([
            (UserClass(
                name="interactive", weight=3.0,
                templates=("Q6", "Q14"), table_zipf=0.8,
                latency_slo=8.0 * cost,
            ), 0.8 / cost),
            (UserClass(
                name="reporting", weight=1.0, templates=("Q1",),
            ), 0.25 / cost),
        ], n_users)
        load = LoadSpec(
            classes=classes,
            n_users=n_users,
            horizon=60.0 * cost,
            max_arrivals_per_class=300,
        )
        return ClusterSpec(
            load=_with_horizon(load, settings),
            n_replicas=settings.cluster_replicas or 2,
            replication_factor=min(2, settings.cluster_replicas or 2),
            balance="least-loaded",
            controller=_controller(cost),
        )

    if name == "skew":
        classes, _ = _rated_classes([
            (UserClass(
                name="analyst", weight=2.0,
                templates=("Q6", "Q14", "Q3", "Q1"), table_zipf=1.5,
                latency_slo=10.0 * cost, patience=25.0 * cost,
            ), 1.5 / cost),
            (UserClass(
                name="dashboard", weight=1.0,
                templates=("Q6",),
            ), 0.3 / cost),
        ], n_users)
        load = LoadSpec(
            classes=classes,
            n_users=n_users,
            user_zipf=1.2,
            horizon=50.0 * cost,
            max_arrivals_per_class=400,
        )
        return ClusterSpec(
            load=_with_horizon(load, settings),
            n_replicas=settings.cluster_replicas or 3,
            replication_factor=1,
            balance="preference",
            controller=_controller(cost),
        )

    # scale: the load must overwhelm a single replica (makespan well
    # past the arrival window) so added replicas genuinely relieve a
    # bottleneck; the multi-table mix keeps scan sharing from absorbing
    # the whole overload on one node.
    classes, _ = _rated_classes([
        (UserClass(
            name="scan", weight=1.0, templates=("Q6", "Q14", "Q3"),
        ), 8.0 / cost),
    ], n_users)
    load = LoadSpec(
        classes=classes,
        n_users=n_users,
        horizon=30.0 * cost,
        max_arrivals_per_class=360,
    )
    return ClusterSpec(
        load=_with_horizon(load, settings),
        n_replicas=scale_axis(settings).axis.sequence[0],
        replication_factor=1,
        balance="preference",
        controller=_controller(cost),
    )


def _with_horizon(load: LoadSpec, settings: ExperimentSettings) -> LoadSpec:
    """``load`` with the CLI's ``--horizon`` override applied, if any."""
    if settings.service_horizon is None:
        return load
    return LoadSpec(
        classes=load.classes,
        n_users=load.n_users,
        horizon=settings.service_horizon,
        user_zipf=load.user_zipf,
        max_arrivals_per_class=load.max_arrivals_per_class,
    )


def scale_axis(settings: ExperimentSettings) -> Scannable:
    """The replica-count axis the scale experiment sweeps.

    Defaults to 1 → 2 → 4; ``--replicas K`` reshapes it to doubling
    steps from 1 up to (and including) K.
    """
    if settings.cluster_replicas is None:
        points: Tuple[int, ...] = (1, 2, 4)
    else:
        values = [1]
        while values[-1] < settings.cluster_replicas:
            values.append(min(values[-1] * 2, settings.cluster_replicas))
        points = tuple(values)
    return Scannable("replicas", ExplicitScan(points))


def run_cluster_scenario(
    name: str, settings: ExperimentSettings
) -> ClusterResult:
    """Build the named cluster and run it once."""
    spec = build_cluster_spec(name, settings)
    return ClusterService(
        spec, settings, scenario=f"cluster-{name}"
    ).run()


def sv_cluster_steady(settings: ExperimentSettings) -> ClusterResult:
    """Moderate mixed load over a replicated fleet (the golden workhorse)."""
    return run_cluster_scenario("steady", settings)


def sv_cluster_skew(settings: ExperimentSettings) -> ClusterResult:
    """Hot-shard stress: zipf users, zipf tables, no replication slack."""
    return run_cluster_scenario("skew", settings)


def sv_cluster_scale(settings: ExperimentSettings) -> ClusterScalingResult:
    """Identical offered load over a growing fleet (1 → 2 → 4 replicas)."""
    axis = scale_axis(settings)
    base_spec = build_cluster_spec("scale", settings)
    points: List[ClusterResult] = []
    for n_replicas in axis:
        spec = ClusterSpec(
            load=base_spec.load,
            n_replicas=n_replicas,
            replication_factor=base_spec.replication_factor,
            shards_per_table=base_spec.shards_per_table,
            ring_points=base_spec.ring_points,
            balance=base_spec.balance,
            controller=base_spec.controller,
        )
        points.append(ClusterService(
            spec, settings, scenario=f"cluster-scale/x{n_replicas}"
        ).run())
    return ClusterScalingResult(
        scenario="cluster-scale",
        axis=axis.describe(),
        points=points,
    )
