"""Cluster topology: the consistent-hash shard ring and the router.

The router is the cluster's only placement authority: a pure function
from ``(table, user)`` shard keys to replica ids, built so that

* every key routes (**totality** — the ring walk always terminates on a
  non-empty ring),
* the same key routes the same way on every rebuild (**stability** —
  all positions are SHA-256 of stable strings, never ``hash()``),
* growing or shrinking the fleet by one replica only moves keys onto or
  off that replica (**minimal movement** — the defining consistent-
  hashing property; roughly ``1/K`` of keys per membership change).

``replication_factor > 1`` turns the single owner into a *preference
list* — the first ``R`` distinct replicas clockwise from the key — and
the router may then break the tie toward the least-loaded holder using
the cross-replica load stats it accumulates as it assigns arrivals.
"""

from __future__ import annotations

import hashlib
from bisect import bisect_left
from typing import TYPE_CHECKING, Dict, List, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.spec import ClusterSpec


def ring_hash(text: str) -> int:
    """A stable 64-bit ring position for any string key."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring over replica ids with virtual nodes.

    Each replica contributes ``ring_points`` virtual nodes at positions
    ``sha256("replica:<id>#vnode:<v>")``; more points smooth the load
    split at the cost of a longer (still tiny) sorted array.
    """

    def __init__(self, replica_ids: Sequence[int], ring_points: int = 64):
        if not replica_ids:
            raise ValueError("hash ring needs at least one replica")
        if ring_points < 1:
            raise ValueError(f"ring_points must be >= 1, got {ring_points}")
        if len(set(replica_ids)) != len(replica_ids):
            raise ValueError(f"duplicate replica ids: {list(replica_ids)}")
        self.replica_ids = tuple(replica_ids)
        self.ring_points = ring_points
        points: List[Tuple[int, int]] = []
        for replica_id in replica_ids:
            for vnode in range(ring_points):
                points.append(
                    (ring_hash(f"replica:{replica_id}#vnode:{vnode}"),
                     replica_id)
                )
        # Sorting by (position, id) makes even a position collision
        # between two replicas' vnodes resolve identically on rebuild.
        points.sort()
        self._points = points
        self._positions = [position for position, _ in points]

    def __len__(self) -> int:
        return len(self._points)

    def preference(self, key: str, n: int = 1) -> List[int]:
        """The first ``n`` distinct replicas clockwise from ``key``.

        ``n`` is clamped to the replica count, so the list is always
        non-empty and never repeats a replica.
        """
        if n < 1:
            raise ValueError(f"preference length must be >= 1, got {n}")
        n = min(n, len(self.replica_ids))
        start = bisect_left(self._positions, ring_hash(key))
        chosen: List[int] = []
        for step in range(len(self._points)):
            _, replica_id = self._points[(start + step) % len(self._points)]
            if replica_id not in chosen:
                chosen.append(replica_id)
                if len(chosen) == n:
                    break
        return chosen

    def owner(self, key: str) -> int:
        """The single primary owner of ``key``."""
        return self.preference(key, 1)[0]


class ClusterRouter:
    """Stateful arrival router: the ring plus cross-replica load stats.

    ``route`` must be called in global arrival order — the least-loaded
    tie-break reads the assignment counters, so call order is part of
    the deterministic contract (the cluster service sorts the merged
    load plan before routing).
    """

    def __init__(self, spec: "ClusterSpec"):
        self.spec = spec
        self.ring = HashRing(
            range(spec.n_replicas), ring_points=spec.ring_points
        )
        #: Arrivals assigned so far, per replica (the load stats).
        self.assigned: List[int] = [0] * spec.n_replicas
        #: Distinct shard keys each replica has been asked to serve.
        self._shards_touched: List[set] = [set() for _ in range(spec.n_replicas)]

    def shard_key(self, table: str, user_id: int) -> str:
        """The shard a ``(table, user)`` pair belongs to."""
        return f"{table}/{user_id % self.spec.shards_per_table}"

    def route(self, table: str, user_id: int) -> int:
        """Assign one arrival to a replica and update the load stats."""
        key = self.shard_key(table, user_id)
        candidates = self.ring.preference(key, self.spec.replication_factor)
        if self.spec.balance == "least-loaded" and len(candidates) > 1:
            # Ties resolve toward ring-preference order, so a balanced
            # fleet degrades to plain consistent hashing.
            chosen = min(
                candidates,
                key=lambda rid: (self.assigned[rid], candidates.index(rid)),
            )
        else:
            chosen = candidates[0]
        self.assigned[chosen] += 1
        self._shards_touched[chosen].add(key)
        return chosen

    def shards_touched(self) -> List[int]:
        """Distinct shard keys routed to each replica so far."""
        return [len(shards) for shards in self._shards_touched]

    def stats(self) -> Dict[str, object]:
        """JSON-safe routing summary for cluster metrics."""
        return {
            "balance": self.spec.balance,
            "assigned": {
                str(rid): count for rid, count in enumerate(self.assigned)
            },
            "shards": {
                str(rid): count
                for rid, count in enumerate(self.shards_touched())
            },
        }
