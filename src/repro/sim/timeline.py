"""Step-function timelines for utilization accounting.

A :class:`StepTimeline` records a piecewise-constant integer level over
simulated time — for example "CPUs busy" or "disk requests outstanding".
The metrics layer merges several timelines to compute iostat-style
user/system/idle/iowait breakdowns and per-bucket time series, so the
timeline exposes integrals, bucketed averages, and a merge-friendly
iterator of change points.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


class StepTimeline:
    """Piecewise-constant level recorded as (time, level) change points."""

    __slots__ = ("_points",)

    def __init__(self, initial: int = 0, start_time: float = 0.0):
        self._points: List[Tuple[float, float]] = [(start_time, float(initial))]

    def record(self, time: float, level: float) -> None:
        """Set the level at ``time``.  Times must be non-decreasing."""
        last_time, last_level = self._points[-1]
        if time < last_time - 1e-12:
            raise ValueError(f"timeline time went backwards: {time} < {last_time}")
        if level == last_level:
            return
        if abs(time - last_time) <= 1e-12:
            # Collapse same-instant updates to the latest level.
            self._points[-1] = (last_time, float(level))
            # Remove a redundant point if it now matches its predecessor.
            if len(self._points) >= 2 and self._points[-2][1] == float(level):
                self._points.pop()
        else:
            self._points.append((time, float(level)))

    @property
    def current_level(self) -> float:
        """The most recently recorded level."""
        return self._points[-1][1]

    def level_at(self, time: float) -> float:
        """The level in effect at ``time`` (right-continuous)."""
        level = self._points[0][1]
        for point_time, point_level in self._points:
            if point_time > time:
                break
            level = point_level
        return level

    def change_points(self) -> Iterator[Tuple[float, float]]:
        """Iterate ``(time, level)`` change points in time order."""
        return iter(self._points)

    def integral(self, until: float, since: float = 0.0) -> float:
        """Integrate the level over ``[since, until]`` (level-seconds)."""
        if until < since:
            raise ValueError(f"integral bounds reversed: [{since}, {until}]")
        total = 0.0
        points = self._points
        for i, (time, level) in enumerate(points):
            seg_start = max(time, since)
            seg_end = points[i + 1][0] if i + 1 < len(points) else until
            seg_end = min(seg_end, until)
            if seg_end > seg_start:
                total += level * (seg_end - seg_start)
        return total

    def bucketed_integrals(self, until: float, bucket: float) -> List[float]:
        """Integrate the level over consecutive buckets of width ``bucket``.

        Returns one value per bucket covering ``[0, until]``; the final
        bucket may be partial.
        """
        if bucket <= 0:
            raise ValueError(f"bucket width must be positive, got {bucket}")
        buckets: List[float] = []
        start = 0.0
        while start < until:
            end = min(start + bucket, until)
            buckets.append(self.integral(end, since=start))
            start = end
        return buckets

    def time_at_or_above(self, threshold: float, until: float) -> float:
        """Total time in ``[0, until]`` during which level >= ``threshold``."""
        total = 0.0
        points = self._points
        for i, (time, level) in enumerate(points):
            if level < threshold:
                continue
            seg_end = points[i + 1][0] if i + 1 < len(points) else until
            seg_end = min(seg_end, until)
            seg_start = min(time, until)
            if seg_end > seg_start:
                total += seg_end - seg_start
        return total
