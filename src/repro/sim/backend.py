"""Kernel backend selection: pure-python vs the optional compiled queue.

The simulator's event queue and dispatch loop exist twice:

* the **pure-python** implementation in :mod:`repro.sim.events` /
  :mod:`repro.sim.kernel` — always present, the default;
* an optional **compiled** implementation, ``repro._speedups`` — a
  hand-written CPython extension holding the heap in parallel C arrays
  (``double`` times, ``int64`` seqs, ``PyObject*`` callbacks) with the
  ready slab as a C ring buffer, plus the whole ``run`` drain loop in C.
  Build it with ``make compiled`` (or
  ``REPRO_BUILD_SPEEDUPS=1 python setup.py build_ext --inplace``); no
  third-party packages are required, only a C compiler.

Selection is governed by the ``REPRO_COMPILED`` environment variable:

========== =============================================================
``unset``  pure python (identical to builds without the extension)
``0``      pure python, even if the extension is importable
``1``      compiled if importable, else silently fall back to pure python
``require`` compiled, raising :class:`RuntimeError` if it cannot import
========== =============================================================

Both backends produce byte-identical metric digests — the compiled lane
in CI and ``tests/test_compiled_backend.py`` prove it on the golden
suite.  Tests can override the process-wide choice with :func:`forced`.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Optional

_ENV_VAR = "REPRO_COMPILED"

#: Tri-state override installed by :func:`forced`; ``None`` defers to the
#: environment variable.
_override: Optional[bool] = None

_compiled_queue_cls = None
_compiled_import_error: Optional[BaseException] = None


def _load_compiled():
    """Import the extension once; remember the failure for diagnostics."""
    global _compiled_queue_cls, _compiled_import_error
    if _compiled_queue_cls is None and _compiled_import_error is None:
        try:
            from repro._speedups import CEventQueue  # type: ignore[import-not-found]

            _compiled_queue_cls = CEventQueue
        except BaseException as error:  # pragma: no cover - environment-specific
            _compiled_import_error = error
    return _compiled_queue_cls


def compiled_available() -> bool:
    """Whether the compiled extension can be imported."""
    return _load_compiled() is not None


def compiled_requested() -> bool:
    """Whether the current override / environment asks for the compiled
    backend (without regard to availability)."""
    if _override is not None:
        return _override
    mode = os.environ.get(_ENV_VAR, "").strip().lower()
    return mode in ("1", "true", "on", "require")


def use_compiled() -> bool:
    """Resolve the backend for a new :class:`~repro.sim.kernel.Simulator`.

    Raises :class:`RuntimeError` when ``REPRO_COMPILED=require`` but the
    extension is not importable, so CI lanes cannot silently test the
    wrong backend.
    """
    if not compiled_requested():
        return False
    if _load_compiled() is not None:
        return True
    mode = os.environ.get(_ENV_VAR, "").strip().lower()
    if _override is None and mode == "require":
        raise RuntimeError(
            "REPRO_COMPILED=require but repro._speedups is not importable "
            f"(build it with 'make compiled'); import error: "
            f"{_compiled_import_error!r}"
        )
    return False


def compiled_queue_class():
    """The compiled queue class (``None`` when unavailable)."""
    return _load_compiled()


def backend_name() -> str:
    """Human-readable name of the backend new simulators will use."""
    return "compiled" if use_compiled() else "python"


@contextmanager
def forced(compiled: Optional[bool]) -> Iterator[None]:
    """Force the backend choice for the duration of the context.

    ``True``/``False`` select compiled/pure python regardless of the
    environment; ``None`` restores environment-driven selection.  Used
    by the digest-equality tests to run both backends in one process.
    """
    global _override
    previous = _override
    _override = compiled
    try:
        yield
    finally:
        _override = previous
