"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on.  It
starts *pending*, and is later *triggered* exactly once with either a value
(:meth:`Event.succeed`) or an exception (:meth:`Event.fail`).  Callbacks
registered on a pending event run when it triggers; callbacks added after
triggering are scheduled immediately at the current simulation time.

The :class:`EventQueue` is a deterministic priority queue of ``(time, seq)``
ordered callbacks used internally by the simulator.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (double trigger, etc.)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The interrupting party supplies a ``cause`` that the interrupted
    process can inspect (for example, a throttle-release notification).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that simulation processes can wait on."""

    __slots__ = ("sim", "_callbacks", "_triggered", "_value", "_is_error")

    def __init__(self, sim: "Any"):
        self.sim = sim
        self._callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self._value: Any = None
        self._is_error = False

    @property
    def triggered(self) -> bool:
        """Whether the event has already occurred."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value the event succeeded with (or the stored exception)."""
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    @property
    def failed(self) -> bool:
        """Whether the event was triggered via :meth:`fail`."""
        return self._triggered and self._is_error

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(self)`` when the event triggers.

        If the event already triggered, the callback is scheduled to run
        at the current simulation time (preserving run-to-completion
        semantics rather than invoking it re-entrantly).
        """
        if self._triggered:
            self.sim.schedule(0.0, lambda: callback(self))
        else:
            self._callbacks.append(callback)

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        self._trigger(value, is_error=False)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, raised in each waiter."""
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail requires an exception instance")
        self._trigger(exception, is_error=True)
        return self

    def _trigger(self, value: Any, is_error: bool) -> None:
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        self._is_error = is_error
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            self.sim.schedule(0.0, lambda cb=callback: cb(self))


class EventQueue:
    """Deterministic time-ordered callback queue.

    Entries are ordered by ``(time, sequence_number)`` so that callbacks
    scheduled for the same instant run in insertion order, which makes
    every simulation fully reproducible.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute simulation ``time``."""
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def peek_time(self) -> Optional[float]:
        """Return the time of the next scheduled callback, if any."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Tuple[float, Callable[[], None]]:
        """Remove and return ``(time, callback)`` for the next entry."""
        time, _seq, callback = heapq.heappop(self._heap)
        return time, callback
