"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on.  It
starts *pending*, and is later *triggered* exactly once with either a value
(:meth:`Event.succeed`) or an exception (:meth:`Event.fail`).  Callbacks
registered on a pending event run when it triggers; callbacks added after
triggering are scheduled immediately at the current simulation time.

The :class:`EventQueue` is a deterministic priority queue of ``(time, seq)``
ordered callbacks used internally by the simulator.  Since the batched
dispatch rework it is split into two lanes:

* a *ready slab* (:attr:`EventQueue._ready`) — a FIFO of bare callbacks due
  at exactly the queue's current time.  Zero-delay scheduling (event
  triggers, process starts, resource grants — the majority of all pushes)
  costs one append here: no entry tuple, no sequence number, no heap
  sift;
* a *heap* of ``(time, seq, callback)`` entries for strictly-future times.

Because a push routes to the slab **only** when its time is exactly the
current time, and the current time only advances when the slab is empty,
the drain order (all heap entries at the new time in sequence order, then
the slab FIFO) is identical to the old single-heap ``(time, seq)`` order —
the Hypothesis equivalence property in ``tests/test_sim_events.py`` pins
this against a copy of the legacy implementation.

An optional compiled backend (``repro._speedups``, enabled with
``REPRO_COMPILED=1``) provides the same queue with parallel C arrays; see
:mod:`repro.sim.backend`.
"""

from __future__ import annotations

from collections import deque
from functools import partial
from heapq import heappop, heappush
from typing import Any, Callable, Iterable, List, Optional, Tuple

_INF = float("inf")


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (double trigger, etc.)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The interrupting party supplies a ``cause`` that the interrupted
    process can inspect (for example, a throttle-release notification).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that simulation processes can wait on."""

    __slots__ = ("sim", "_callbacks", "_triggered", "_value", "_is_error")

    def __init__(self, sim: "Any"):
        self.sim = sim
        self._callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self._value: Any = None
        self._is_error = False

    @property
    def triggered(self) -> bool:
        """Whether the event has already occurred."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value the event succeeded with (or the stored exception)."""
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    @property
    def failed(self) -> bool:
        """Whether the event was triggered via :meth:`fail`."""
        return self._triggered and self._is_error

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(self)`` when the event triggers.

        If the event already triggered, the callback lands on the ready
        slab at the current simulation time (preserving run-to-completion
        semantics rather than invoking it re-entrantly).  Since the
        batched-dispatch rework this late path is a single FIFO append —
        no heap entry, no sequence number — so hot loops that race an
        already-completed I/O no longer pay a heap sift per callback.
        """
        if self._triggered:
            self.sim.schedule(0.0, partial(callback, self))
        else:
            self._callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Detach a pending ``callback``; a no-op if it is not registered
        (or the event already triggered and flushed its callback list)."""
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        self._trigger(value, is_error=False)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, raised in each waiter."""
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail requires an exception instance")
        self._trigger(exception, is_error=True)
        return self

    def _trigger(self, value: Any, is_error: bool) -> None:
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        self._is_error = is_error
        callbacks, self._callbacks = self._callbacks, []
        # partial() beats a closure here: C-level allocation, no cell vars,
        # and this runs once per waiter on every trigger.  Multi-waiter
        # triggers go through the bulk-schedule API: one queue call for
        # the whole waiter list instead of one heap/slab touch each.
        n = len(callbacks)
        if n == 1:
            self.sim.schedule(0.0, partial(callbacks[0], self))
        elif n:
            self.sim.schedule_many(
                0.0, [partial(callback, self) for callback in callbacks]
            )


class Timeout(Event):
    """An event that is its own expiry callback.

    ``Simulator.timeout`` used to allocate a closure per call
    (``lambda: ev.succeed(value)``); pushing the event itself onto the
    queue and making it callable halves the allocations on the single
    most common scheduling operation.
    """

    __slots__ = ("_scheduled_value",)

    def __init__(self, sim: "Any", value: Any = None):
        super().__init__(sim)
        self._scheduled_value = value

    def __call__(self) -> None:
        self.succeed(self._scheduled_value)


#: A raw heap entry: ``(time, seq, callback)``.  ``seq`` breaks time
#: ties in insertion order and is internal to the queue.
QueueEntry = Tuple[float, int, Callable[[], None]]


class EventQueue:
    """Deterministic time-ordered callback queue.

    Entries are ordered by ``(time, sequence_number)`` so that callbacks
    scheduled for the same instant run in insertion order, which makes
    every simulation fully reproducible.

    The queue owns the *time cursor* ``_time``: pushes at exactly the
    cursor go to the ready slab (FIFO — their insertion order **is**
    their sequence order, because the cursor only advances once the slab
    is empty), pushes at strictly later times go to the heap, and pushes
    into the past raise :class:`SimulationError` immediately instead of
    corrupting the heap order.
    """

    __slots__ = ("_heap", "_ready", "_seq", "_time")

    def __init__(self) -> None:
        self._heap: List[QueueEntry] = []
        self._ready: deque = deque()
        self._seq = 0
        self._time = 0.0

    def __len__(self) -> int:
        return len(self._heap) + len(self._ready)

    @property
    def time(self) -> float:
        """The queue's time cursor (the time of the ready slab)."""
        return self._time

    def push(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute simulation ``time``."""
        if time > self._time:
            if time == _INF:
                raise SimulationError("cannot schedule at time=inf")
            heappush(self._heap, (time, self._seq, callback))
            self._seq += 1
        elif time == self._time:
            self._ready.append(callback)
        else:
            # NaN falls through both comparisons above.
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._time})"
            )

    def push_many(
        self, time: float, callbacks: Iterable[Callable[[], None]]
    ) -> None:
        """Bulk-schedule ``callbacks`` at ``time`` in iteration order.

        Equivalent to ``push`` in a loop, but the time routing and (for
        future times) the sequence-counter bookkeeping happen once for
        the whole batch.  The due-now case — every waiter of a triggered
        event — is a single ``deque.extend``.
        """
        if time > self._time:
            if time == _INF:
                raise SimulationError("cannot schedule at time=inf")
            heap = self._heap
            seq = self._seq
            for callback in callbacks:
                heappush(heap, (time, seq, callback))
                seq += 1
            self._seq = seq
        elif time == self._time:
            self._ready.extend(callbacks)
        else:
            raise SimulationError(
                f"cannot schedule into the past (time={time}, now={self._time})"
            )

    def peek_time(self) -> Optional[float]:
        """Return the time of the next scheduled callback, if any."""
        heap = self._heap
        if self._ready and (not heap or heap[0][0] > self._time):
            return self._time
        if not heap:
            return None
        return heap[0][0]

    def pop(self) -> Tuple[float, Callable[[], None]]:
        """Remove and return ``(time, callback)`` for the next entry.

        Heap entries at the cursor time pop before slab entries (they
        were pushed before the cursor reached their time, so their
        sequence numbers are smaller); the cursor advances to the popped
        entry's time.
        """
        heap = self._heap
        if self._ready and (not heap or heap[0][0] > self._time):
            return self._time, self._ready.popleft()
        time, _seq, callback = heappop(heap)
        if time > self._time:
            self._time = time
        return time, callback
