"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence that processes can wait on.  It
starts *pending*, and is later *triggered* exactly once with either a value
(:meth:`Event.succeed`) or an exception (:meth:`Event.fail`).  Callbacks
registered on a pending event run when it triggers; callbacks added after
triggering are scheduled immediately at the current simulation time.

The :class:`EventQueue` is a deterministic priority queue of ``(time, seq)``
ordered callbacks used internally by the simulator.
"""

from __future__ import annotations

import heapq
from functools import partial
from typing import Any, Callable, List, Optional, Tuple


class SimulationError(RuntimeError):
    """Raised for misuse of the simulation kernel (double trigger, etc.)."""


class Interrupt(Exception):
    """Thrown into a process that is interrupted while waiting.

    The interrupting party supplies a ``cause`` that the interrupted
    process can inspect (for example, a throttle-release notification).
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that simulation processes can wait on."""

    __slots__ = ("sim", "_callbacks", "_triggered", "_value", "_is_error")

    def __init__(self, sim: "Any"):
        self.sim = sim
        self._callbacks: List[Callable[["Event"], None]] = []
        self._triggered = False
        self._value: Any = None
        self._is_error = False

    @property
    def triggered(self) -> bool:
        """Whether the event has already occurred."""
        return self._triggered

    @property
    def value(self) -> Any:
        """The value the event succeeded with (or the stored exception)."""
        if not self._triggered:
            raise SimulationError("event value read before trigger")
        return self._value

    @property
    def failed(self) -> bool:
        """Whether the event was triggered via :meth:`fail`."""
        return self._triggered and self._is_error

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        """Run ``callback(self)`` when the event triggers.

        If the event already triggered, the callback is scheduled to run
        at the current simulation time (preserving run-to-completion
        semantics rather than invoking it re-entrantly).
        """
        if self._triggered:
            self.sim.schedule(0.0, partial(callback, self))
        else:
            self._callbacks.append(callback)

    def remove_callback(self, callback: Callable[["Event"], None]) -> None:
        """Detach a pending ``callback``; a no-op if it is not registered
        (or the event already triggered and flushed its callback list)."""
        try:
            self._callbacks.remove(callback)
        except ValueError:
            pass

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully, delivering ``value`` to waiters."""
        self._trigger(value, is_error=False)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception, raised in each waiter."""
        if not isinstance(exception, BaseException):
            raise SimulationError("Event.fail requires an exception instance")
        self._trigger(exception, is_error=True)
        return self

    def _trigger(self, value: Any, is_error: bool) -> None:
        if self._triggered:
            raise SimulationError("event triggered twice")
        self._triggered = True
        self._value = value
        self._is_error = is_error
        callbacks, self._callbacks = self._callbacks, []
        # partial() beats a closure here: C-level allocation, no cell vars,
        # and this runs once per waiter on every trigger.
        schedule = self.sim.schedule
        for callback in callbacks:
            schedule(0.0, partial(callback, self))


class Timeout(Event):
    """An event that is its own expiry callback.

    ``Simulator.timeout`` used to allocate a closure per call
    (``lambda: ev.succeed(value)``); pushing the event itself onto the
    queue and making it callable halves the allocations on the single
    most common scheduling operation.
    """

    __slots__ = ("_scheduled_value",)

    def __init__(self, sim: "Any", value: Any = None):
        super().__init__(sim)
        self._scheduled_value = value

    def __call__(self) -> None:
        self.succeed(self._scheduled_value)


#: A raw queue entry: ``(time, seq, callback)``.  ``seq`` breaks time
#: ties in insertion order and is never exposed except for re-queueing.
QueueEntry = Tuple[float, int, Callable[[], None]]


class EventQueue:
    """Deterministic time-ordered callback queue.

    Entries are ordered by ``(time, sequence_number)`` so that callbacks
    scheduled for the same instant run in insertion order, which makes
    every simulation fully reproducible.
    """

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._seq = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute simulation ``time``."""
        heapq.heappush(self._heap, (time, self._seq, callback))
        self._seq += 1

    def peek_time(self) -> Optional[float]:
        """Return the time of the next scheduled callback, if any."""
        if not self._heap:
            return None
        return self._heap[0][0]

    def pop(self) -> Tuple[float, Callable[[], None]]:
        """Remove and return ``(time, callback)`` for the next entry."""
        time, _seq, callback = heapq.heappop(self._heap)
        return time, callback

    def pop_entry(self) -> QueueEntry:
        """Remove and return the raw next entry, sequence number included.

        Pairs with :meth:`requeue`: the event loop pops exactly once per
        dispatch and, when an ``until`` bound stops the run early, pushes
        the untouched entry back without disturbing its tie-break order.
        """
        return heapq.heappop(self._heap)

    def requeue(self, entry: QueueEntry) -> None:
        """Push back an entry obtained from :meth:`pop_entry` verbatim."""
        heapq.heappush(self._heap, entry)
