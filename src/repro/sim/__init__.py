"""Discrete-event simulation kernel.

This package provides the minimal, deterministic discrete-event machinery
that the rest of the reproduction runs on: a :class:`~repro.sim.kernel.Simulator`
with a time-ordered event queue, generator-based cooperative
:class:`~repro.sim.process.Process` objects, counted
:class:`~repro.sim.resource.Resource` objects (used to model CPUs and the
disk arm), and :class:`~repro.sim.timeline.StepTimeline` for recording
utilization step-functions that the metrics layer later merges into
user/system/idle/iowait breakdowns.

The kernel is intentionally simpy-like but tiny: processes ``yield`` Event
objects and are resumed when those events trigger.  All tie-breaking is by
insertion sequence number, so runs are fully deterministic for a fixed
workload and seed.
"""

from repro.sim.events import Event, EventQueue, Interrupt
from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.resource import Resource
from repro.sim.timeline import StepTimeline

__all__ = [
    "Event",
    "EventQueue",
    "Interrupt",
    "Process",
    "Resource",
    "Simulator",
    "StepTimeline",
]
