"""The simulator: clock + event loop + process spawning."""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.sim.events import Event, EventQueue, SimulationError, Timeout
from repro.sim.process import Process
from repro.trace.events import SimDispatch
from repro.trace.tracer import TracerHandle

#: Cached tracer reference for the dispatch loop, revalidated against the
#: tracer generation counter — one integer compare per dispatch instead of
#: a ``get_tracer()`` call, while sink swaps mid-run are still picked up.
_TRACER = TracerHandle()


class Simulator:
    """Deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.5)
            return "done"

        proc = sim.spawn(worker(sim), name="worker")
        sim.run()
        assert sim.now == 1.5
        assert proc.completion.value == "done"
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._queue.push(self._now + delay, callback)

    def event(self) -> Event:
        """Create a fresh untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """Return an event that succeeds ``delay`` seconds from now.

        The returned :class:`~repro.sim.events.Timeout` is queued as its
        own callback, so a timeout costs one allocation, not two.
        """
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        ev = Timeout(self, value)
        self._queue.push(self._now + delay, ev)
        return ev

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator`` at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> Event:
        """Return an event that succeeds once every event in ``events`` has.

        The combined event's value is the list of individual values, in the
        order given.  If any constituent fails, the combined event fails
        with the first failure and detaches from the still-pending
        constituents, so their later triggers no longer invoke the
        aggregation callback.
        """
        combined = Event(self)
        remaining = {"count": len(events)}
        if remaining["count"] == 0:
            combined.succeed([])
            return combined

        def on_done(_event: Event) -> None:
            if combined.triggered:
                return
            if _event.failed:
                combined.fail(_event.value)
                for ev in events:
                    if not ev.triggered:
                        ev.remove_callback(on_done)
                return
            remaining["count"] -= 1
            if remaining["count"] == 0:
                combined.succeed([ev.value for ev in events])

        for ev in events:
            ev.add_callback(on_done)
        return combined

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run the event loop.

        Processes callbacks in time order until the queue drains, or until
        simulated time would exceed ``until`` (the clock is then advanced
        to exactly ``until``).  Returns the final simulation time.

        The loop body is the hottest code in the package: every simulated
        page touch, disk completion, and throttle wait dispatches through
        here.  It therefore pops each heap entry exactly once (re-queueing
        only when the ``until`` bound is exceeded), keeps the clock in a
        local, and reads the tracer through a generation-checked handle
        instead of a registry lookup per dispatch.
        """
        if self._running:
            raise SimulationError("Simulator.run called re-entrantly")
        self._running = True
        try:
            queue = self._queue
            heap = queue._heap  # the loop condition must not pay a __len__ call
            pop_entry = queue.pop_entry
            tracer_of = _TRACER.active
            now = self._now
            while heap:
                entry = pop_entry()
                time = entry[0]
                if until is not None and time > until:
                    queue.requeue(entry)
                    self._now = until
                    return until
                if time < now - 1e-12:
                    raise SimulationError(
                        f"event queue time went backwards: {time} < {now}"
                    )
                if time > now:
                    now = time
                    self._now = now
                tracer = tracer_of()
                if tracer is not None:
                    tracer.emit(SimDispatch(time=now, queue_len=len(heap)))
                entry[2]()
            if until is not None and until > now:
                now = until
                self._now = now
            return now
        finally:
            self._running = False
