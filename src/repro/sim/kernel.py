"""The simulator: clock + event loop + process spawning."""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional

from repro.sim.events import Event, EventQueue, SimulationError
from repro.sim.process import Process
from repro.trace.events import SimDispatch
from repro.trace.tracer import get_tracer


class Simulator:
    """Deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.5)
            return "done"

        proc = sim.spawn(worker(sim), name="worker")
        sim.run()
        assert sim.now == 1.5
        assert proc.completion.value == "done"
    """

    def __init__(self) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        self._queue.push(self._now + delay, callback)

    def event(self) -> Event:
        """Create a fresh untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """Return an event that succeeds ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative timeout: {delay}")
        ev = Event(self)
        self._queue.push(self._now + delay, lambda: ev.succeed(value))
        return ev

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator`` at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> Event:
        """Return an event that succeeds once every event in ``events`` has.

        The combined event's value is the list of individual values, in the
        order given.  If any constituent fails, the combined event fails
        with the first failure.
        """
        combined = Event(self)
        remaining = {"count": len(events)}
        if remaining["count"] == 0:
            combined.succeed([])
            return combined

        def on_done(_event: Event) -> None:
            if combined.triggered:
                return
            if _event.failed:
                combined.fail(_event.value)
                return
            remaining["count"] -= 1
            if remaining["count"] == 0:
                combined.succeed([ev.value for ev in events])

        for ev in events:
            ev.add_callback(on_done)
        return combined

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run the event loop.

        Processes callbacks in time order until the queue drains, or until
        simulated time would exceed ``until`` (the clock is then advanced
        to exactly ``until``).  Returns the final simulation time.
        """
        if self._running:
            raise SimulationError("Simulator.run called re-entrantly")
        self._running = True
        try:
            while len(self._queue):
                next_time = self._queue.peek_time()
                assert next_time is not None
                if until is not None and next_time > until:
                    self._now = until
                    return self._now
                time, callback = self._queue.pop()
                if time < self._now - 1e-12:
                    raise SimulationError(
                        f"event queue time went backwards: {time} < {self._now}"
                    )
                self._now = max(self._now, time)
                tracer = get_tracer()
                if tracer.enabled:
                    tracer.emit(
                        SimDispatch(time=self._now, queue_len=len(self._queue))
                    )
                callback()
            if until is not None and until > self._now:
                self._now = until
            return self._now
        finally:
            self._running = False
