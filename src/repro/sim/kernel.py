"""The simulator: clock + event loop + process spawning."""

from __future__ import annotations

from heapq import heappop
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.sim import backend
from repro.sim.events import Event, EventQueue, SimulationError, Timeout
from repro.sim.process import Process
from repro.trace.events import SimDispatch
from repro.trace.tracer import TracerHandle

#: Cached tracer reference for the dispatch loop, revalidated against the
#: tracer generation counter — one integer compare per dispatch instead of
#: a ``get_tracer()`` call, while sink swaps mid-run are still picked up.
_TRACER = TracerHandle()

_INF = float("inf")


class Simulator:
    """Deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()

        def worker(sim):
            yield sim.timeout(1.5)
            return "done"

        proc = sim.spawn(worker(sim), name="worker")
        sim.run()
        assert sim.now == 1.5
        assert proc.completion.value == "done"

    ``trace_dispatch_sample`` controls :class:`SimDispatch` emission: 1
    (the default) traces every dispatch exactly as before, ``N`` emits
    every Nth, and 0 disables dispatch tracing entirely — the event loop
    then pays **zero** per-event tracer checks, which is what soak-scale
    runs want (buffer/disk/scan events are unaffected).

    The event queue backend is chosen per :mod:`repro.sim.backend`:
    pure python by default, the compiled ``repro._speedups`` queue under
    ``REPRO_COMPILED=1``.  Both produce byte-identical dispatch orders.
    """

    def __init__(self, trace_dispatch_sample: int = 1) -> None:
        if trace_dispatch_sample < 0:
            raise SimulationError(
                f"trace_dispatch_sample must be >= 0, got {trace_dispatch_sample}"
            )
        self._compiled = backend.use_compiled()
        if self._compiled:
            self._queue = backend.compiled_queue_class()()
        else:
            self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self.trace_dispatch_sample = trace_dispatch_sample
        self._trace_countdown = max(trace_dispatch_sample, 0) or 1

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def backend_name(self) -> str:
        """Which queue backend this simulator runs on."""
        return "compiled" if self._compiled else "python"

    # ------------------------------------------------------------------
    # Scheduling primitives
    # ------------------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds.

        ``delay`` must be finite and non-negative; NaN and infinity raise
        :class:`SimulationError` immediately (a NaN-timed entry would
        silently corrupt the queue order, an infinite one would never
        run).
        """
        if not 0.0 <= delay < _INF:
            raise SimulationError(
                f"delay must be finite and >= 0, got {delay!r}"
            )
        self._queue.push(self._now + delay, callback)

    def schedule_many(
        self, delay: float, callbacks: Iterable[Callable[[], None]]
    ) -> None:
        """Bulk-schedule ``callbacks`` at the same instant, in order.

        One queue operation for the whole batch; semantically identical
        to calling :meth:`schedule` once per callback.
        """
        if not 0.0 <= delay < _INF:
            raise SimulationError(
                f"delay must be finite and >= 0, got {delay!r}"
            )
        self._queue.push_many(self._now + delay, callbacks)

    def event(self) -> Event:
        """Create a fresh untriggered event bound to this simulator."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Event:
        """Return an event that succeeds ``delay`` seconds from now.

        The returned :class:`~repro.sim.events.Timeout` is queued as its
        own callback, so a timeout costs one allocation, not two.  Like
        :meth:`schedule`, non-finite delays raise.
        """
        if not 0.0 <= delay < _INF:
            raise SimulationError(
                f"timeout delay must be finite and >= 0, got {delay!r}"
            )
        ev = Timeout(self, value)
        self._queue.push(self._now + delay, ev)
        return ev

    def spawn(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from ``generator`` at the current time."""
        return Process(self, generator, name=name)

    def all_of(self, events: List[Event]) -> Event:
        """Return an event that succeeds once every event in ``events`` has.

        The combined event's value is the list of individual values, in the
        order given.  If any constituent fails, the combined event fails
        with the first failure and detaches from the still-pending
        constituents, so their later triggers no longer invoke the
        aggregation callback.
        """
        combined = Event(self)
        remaining = {"count": len(events)}
        if remaining["count"] == 0:
            combined.succeed([])
            return combined

        def on_done(_event: Event) -> None:
            if combined.triggered:
                return
            if _event.failed:
                combined.fail(_event.value)
                for ev in events:
                    if not ev.triggered:
                        ev.remove_callback(on_done)
                return
            remaining["count"] -= 1
            if remaining["count"] == 0:
                combined.succeed([ev.value for ev in events])

        for ev in events:
            ev.add_callback(on_done)
        return combined

    # ------------------------------------------------------------------
    # Event loop
    # ------------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> float:
        """Run the event loop.

        Processes callbacks in time order until the queue drains, or until
        simulated time would exceed ``until`` (the clock is then advanced
        to exactly ``until``).  Returns the final simulation time.

        The loop body is the hottest code in the package: every simulated
        page touch, disk completion, and throttle wait dispatches through
        here.  It drains in two nested lanes: the ready slab (due-now
        callbacks, one ``popleft`` each — no heap op, no ``until``
        re-check, no time comparison) and same-timestamp heap runs (the
        clock, the ``until`` bound, and the queue's time cursor are
        updated once per distinct timestamp, not once per dispatch).
        """
        if self._running:
            raise SimulationError("Simulator.run called re-entrantly")
        self._running = True
        try:
            now = self._now
            if until is not None and until < now:
                # A bound already in the past never dispatches anything.
                # Legacy quirk, preserved: the clock moves to the bound
                # only when work is still pending.
                if len(self._queue):
                    self._now = until
                    return until
                return now
            if self._compiled:
                now = self._queue.run(
                    self, until, _TRACER.active, self.trace_dispatch_sample
                )
                if until is not None and until > now:
                    now = until
                self._now = now
                return now
            queue = self._queue
            heap = queue._heap
            ready = queue._ready
            pop_ready = ready.popleft
            sample = self.trace_dispatch_sample
            countdown = self._trace_countdown
            tracer_of = _TRACER.active
            while True:
                while ready:
                    callback = pop_ready()
                    if sample:
                        countdown -= 1
                        if countdown <= 0:
                            countdown = sample
                            tracer = tracer_of()
                            if tracer is not None:
                                tracer.emit(SimDispatch(
                                    time=now,
                                    queue_len=len(heap) + len(ready),
                                ))
                    callback()
                if not heap:
                    break
                time = heap[0][0]
                if until is not None and time > until:
                    now = until
                    break
                now = time
                self._now = time
                queue._time = time
                while True:
                    entry = heappop(heap)
                    if sample:
                        countdown -= 1
                        if countdown <= 0:
                            countdown = sample
                            tracer = tracer_of()
                            if tracer is not None:
                                tracer.emit(SimDispatch(
                                    time=now,
                                    queue_len=len(heap) + len(ready),
                                ))
                    entry[2]()
                    if not heap or heap[0][0] != time:
                        break
            if until is not None and until > now:
                now = until
            self._now = now
            self._trace_countdown = countdown
            return now
        finally:
            self._running = False
