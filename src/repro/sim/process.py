"""Generator-based cooperative processes.

A simulation process is a Python generator that ``yield``\\ s
:class:`~repro.sim.events.Event` objects.  The kernel resumes the generator
when the yielded event triggers, sending the event's value back into the
generator (or throwing the event's exception).  When the generator returns,
the process's own completion event succeeds with the returned value, so
processes can wait on each other.
"""

from __future__ import annotations

from typing import Any, Generator, Optional

from repro.sim.events import Event, Interrupt, SimulationError


class Process:
    """Wraps a generator and steps it through the simulation.

    Do not instantiate directly — use :meth:`repro.sim.kernel.Simulator.spawn`.
    """

    __slots__ = ("sim", "name", "_generator", "_completion", "_waiting_on", "_started")

    def __init__(self, sim: Any, generator: Generator, name: str = ""):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you call a plain function instead of a generator function?"
            )
        self.sim = sim
        self.name = name or repr(generator)
        self._generator = generator
        self._completion: Event = Event(sim)
        self._waiting_on: Optional[Event] = None
        self._started = False
        # Kick off the process at the current simulation time.
        sim.schedule(0.0, self._start)

    @property
    def completion(self) -> Event:
        """Event that succeeds with the generator's return value."""
        return self._completion

    @property
    def alive(self) -> bool:
        """Whether the process has not yet finished."""
        return not self._completion.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at its current wait.

        Interrupting a finished process is a silent no-op, and interrupting
        a process that has not yet had its first step is deferred until it
        would next wait.
        """
        if not self.alive:
            return
        waiting_on = self._waiting_on
        if waiting_on is None:
            # Not currently waiting (either not started or mid-step); defer
            # delivery to the next scheduler slot.
            self.sim.schedule(0.0, lambda: self.interrupt(cause))
            return
        self._waiting_on = None
        self._step(Interrupt(cause), throw=True)

    def _start(self) -> None:
        if self._started:
            return
        self._started = True
        self._step(None, throw=False)

    def _step(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                target = self._generator.throw(value)
            else:
                target = self._generator.send(value)
        except StopIteration as stop:
            self._completion.succeed(stop.value)
            return
        except BaseException as error:  # noqa: BLE001 - deliberate boundary
            # An exception escaping the process body fails its completion
            # event, so waiters (and only waiters) observe the failure
            # instead of the whole simulation crashing mid-callback.
            self._completion.fail(error)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name!r} yielded {type(target).__name__}; "
                "processes may only yield Event objects"
            )
        self._waiting_on = target
        target.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        if self._waiting_on is not event:
            # The process was interrupted away from this event; ignore the
            # stale wakeup.
            return
        self._waiting_on = None
        if event.failed:
            self._step(event.value, throw=True)
        else:
            self._step(event.value, throw=False)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name} {state}>"
