"""Counted resources with FIFO grant order and utilization tracking.

A :class:`Resource` models a pool of identical servers (CPU cores, disk
arms).  Processes ``yield resource.acquire()`` and later call
``resource.release()``.  Grants are strictly FIFO, which keeps simulations
deterministic and avoids starvation.

Every capacity change is recorded on a :class:`~repro.sim.timeline.StepTimeline`
so that the metrics layer can later compute utilization integrals and
derive iostat-style breakdowns.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.sim.events import Event, SimulationError
from repro.sim.kernel import Simulator
from repro.sim.timeline import StepTimeline


class Resource:
    """A counted FIFO resource (e.g. ``capacity`` CPU cores)."""

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self.busy_timeline = StepTimeline(initial=0)

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of processes waiting for a slot."""
        return len(self._waiters)

    def acquire(self) -> Event:
        """Request one slot; the returned event succeeds when granted."""
        ev = Event(self.sim)
        if self._in_use < self.capacity and not self._waiters:
            self._grant(ev)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Return one previously granted slot."""
        if self._in_use <= 0:
            raise SimulationError(f"release on idle resource {self.name!r}")
        self._in_use -= 1
        self.busy_timeline.record(self.sim.now, self._in_use)
        if self._waiters and self._in_use < self.capacity:
            self._grant(self._waiters.popleft())

    def _grant(self, ev: Event) -> None:
        self._in_use += 1
        self.busy_timeline.record(self.sim.now, self._in_use)
        ev.succeed(self)

    def busy_time(self, until: float) -> float:
        """Integral of (slots in use) over time, in slot-seconds."""
        return self.busy_timeline.integral(until)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Resource {self.name} {self._in_use}/{self.capacity} busy, "
            f"{len(self._waiters)} waiting>"
        )
