"""The sharing table scan operator — the paper's modified scan logic.

Differences from the vanilla :class:`~repro.scans.table_scan.TableScan`
(the bold lines of the paper's pseudo-code):

1. it registers with the scan sharing manager, which may place its start
   *inside* the range (it then wraps around);
2. every ``update_interval_pages`` pages it reports its location — the
   manager may answer with a throttle wait, which the scan serves before
   continuing (the call "simply appears to take a longer time");
3. each page is released with the manager-chosen priority instead of a
   fixed one.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.core.scan_state import ScanDescriptor
from repro.scans.base import ScanResult, scan_order
from repro.scans.table_scan import OnPage


class SharedTableScan:
    """Wrap-around scan coordinated by the scan sharing manager."""

    def __init__(
        self,
        database: Any,
        table_name: str,
        first_page: int,
        last_page: int,
        on_page: OnPage,
        estimated_speed: Optional[float] = None,
        record_visits: bool = False,
    ):
        self.db = database
        self.table = database.catalog.table(table_name)
        if not 0 <= first_page <= last_page < self.table.n_pages:
            raise ValueError(
                f"bad scan range [{first_page}, {last_page}] on table "
                f"{table_name!r} of {self.table.n_pages} pages"
            )
        self.first_page = first_page
        self.last_page = last_page
        self.on_page = on_page
        self.record_visits = record_visits
        self.estimated_speed = estimated_speed or database.default_scan_speed_estimate(
            table_name
        )

    def run(self) -> Generator:
        """Simulation process body; returns a :class:`ScanResult`."""
        db = self.db
        manager = db.sharing
        descriptor = ScanDescriptor(
            table_name=self.table.name,
            first_page=self.first_page,
            last_page=self.last_page,
            estimated_speed=self.estimated_speed,
        )
        state = manager.start_scan(descriptor)
        yield from db.charge_manager_call_overhead()
        result = ScanResult(
            table_name=self.table.name,
            first_page=self.first_page,
            last_page=self.last_page,
            start_page=state.start_page,
            started_at=db.sim.now,
        )
        interval = manager.config.update_interval_pages
        pages_done = 0
        try:
            for page_no in scan_order(self.first_page, self.last_page, state.start_page):
                yield from self._process_page(page_no, state.scan_id, result)
                pages_done += 1
                if pages_done % interval == 0:
                    yield from self._report_location(state.scan_id, pages_done, result)
            if pages_done % interval != 0:
                yield from self._report_location(state.scan_id, pages_done, result)
        finally:
            manager.end_scan(state.scan_id)
        result.finished_at = db.sim.now
        return result

    def _process_page(self, page_no: int, scan_id: int, result: ScanResult) -> Generator:
        db = self.db
        key = db.catalog.page_key(self.table.name, page_no)
        prefetch = self._prefetch_run(page_no)
        frame = yield from db.pool.fix(key, prefetch=prefetch)
        assert frame.key == key
        try:
            data = self.table.page_data(page_no)
            cpu_seconds = self.on_page(page_no, data)
            if cpu_seconds > 0:
                yield db.cpu.acquire()
                try:
                    yield db.sim.timeout(cpu_seconds)
                finally:
                    db.cpu.release()
        finally:
            # Never leak a pin, even when page processing raises.
            db.pool.unfix(key, db.sharing.page_priority(scan_id))
        result.pages_scanned += 1
        result.rows_seen += self.table.schema.rows_per_page
        result.cpu_seconds += cpu_seconds
        if self.record_visits:
            result.visited_pages.append(page_no)

    def _report_location(
        self, scan_id: int, pages_done: int, result: ScanResult
    ) -> Generator:
        db = self.db
        wait = db.sharing.update_location(scan_id, pages_done)
        yield from db.charge_manager_call_overhead()
        if wait > 0:
            result.throttle_seconds += wait
            yield db.sim.timeout(wait)

    def _prefetch_run(self, page_no: int) -> List:
        extent_no = self.table.extent_of(page_no)
        pages = self.table.extent_pages(extent_no)
        catalog = self.db.catalog
        name = self.table.name
        return [catalog.page_key(name, page) for page in pages]
