"""The sharing table scan operator — the paper's modified scan logic.

Differences from the vanilla :class:`~repro.scans.table_scan.TableScan`
(the bold lines of the paper's pseudo-code):

1. it registers with the scan sharing manager, which may place its start
   *inside* the range (it then wraps around);
2. every ``update_interval_pages`` pages it reports its location — the
   manager may answer with a throttle wait, which the scan serves before
   continuing (the call "simply appears to take a longer time");
3. each page is released with the manager-chosen priority instead of a
   fixed one.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from repro.core.scan_state import ScanDescriptor
from repro.faults.injector import ScanKilled
from repro.scans.base import ScanResult, scan_order
from repro.scans.table_scan import OnPage


class SharedTableScan:
    """Wrap-around scan coordinated by the scan sharing manager."""

    def __init__(
        self,
        database: Any,
        table_name: str,
        first_page: int,
        last_page: int,
        on_page: OnPage,
        estimated_speed: Optional[float] = None,
        record_visits: bool = False,
    ):
        self.db = database
        self.table = database.catalog.table(table_name)
        if not 0 <= first_page <= last_page < self.table.n_pages:
            raise ValueError(
                f"bad scan range [{first_page}, {last_page}] on table "
                f"{table_name!r} of {self.table.n_pages} pages"
            )
        self.first_page = first_page
        self.last_page = last_page
        self.on_page = on_page
        self.record_visits = record_visits
        self.estimated_speed = estimated_speed or database.default_scan_speed_estimate(
            table_name
        )

    def run(self) -> Generator:
        """Simulation process body; returns a :class:`ScanResult`."""
        db = self.db
        manager = db.sharing
        descriptor = ScanDescriptor(
            table_name=self.table.name,
            first_page=self.first_page,
            last_page=self.last_page,
            estimated_speed=self.estimated_speed,
        )
        state = manager.start_scan(descriptor)
        yield from db.charge_manager_call_overhead()
        result = ScanResult(
            table_name=self.table.name,
            first_page=self.first_page,
            last_page=self.last_page,
            start_page=state.start_page,
            started_at=db.sim.now,
        )
        interval = manager.config.update_interval_pages
        scan_id = state.scan_id
        pages_done = 0
        # Hot-loop locals: one lookup per scan, not one per page.  Keys
        # are built once per prefetch extent; the release priority stays
        # a per-page manager call because grouping changes it mid-scan.
        sim = db.sim
        pool = db.pool
        cpu = db.cpu
        table = self.table
        on_page = self.on_page
        try_fix = pool.try_fix
        page_priority = manager.page_priority
        rows_per_page = table.schema.rows_per_page
        record_visits = self.record_visits
        faults = getattr(db, "faults", None)
        push = getattr(db, "push", None)
        first_page = self.first_page
        last_page = self.last_page
        extent_no = -1
        extent_start = 0
        extent_keys: List = []
        try:
            for page_no in scan_order(self.first_page, self.last_page, state.start_page):
                if faults is not None:
                    # Checked before the page is pinned, so a kill never
                    # leaks a fixed frame.
                    faults.maybe_kill_scan(manager, scan_id, pages_done)
                if table.extent_of(page_no) != extent_no:
                    extent_no, extent_start, extent_keys = self._extent_keys(page_no)
                    if push is not None:
                        # Crossing an extent boundary announces the scan's
                        # pipeline window; only the consumer set's driver
                        # actually issues pushes.
                        push.on_extent_entered(
                            scan_id, table, extent_no, first_page, last_page
                        )
                key = extent_keys[page_no - extent_start]
                frame = try_fix(key)
                if frame is None:
                    frame = yield from pool.fix(key, prefetch=extent_keys)
                assert frame.key == key
                try:
                    data = table.page_data(page_no)
                    cpu_seconds = on_page(page_no, data, rows_per_page)
                    if cpu_seconds > 0:
                        yield cpu.acquire()
                        try:
                            yield sim.timeout(cpu_seconds)
                        finally:
                            cpu.release()
                finally:
                    # Never leak a pin, even when page processing raises.
                    pool.unfix(key, page_priority(scan_id))
                result.pages_scanned += 1
                result.rows_seen += rows_per_page
                result.cpu_seconds += cpu_seconds
                if record_visits:
                    result.visited_pages.append(page_no)
                pages_done += 1
                if pages_done % interval == 0:
                    yield from self._report_location(scan_id, pages_done, result)
            if pages_done % interval != 0:
                yield from self._report_location(scan_id, pages_done, result)
        except ScanKilled:
            # The injector struck: record the partial result and die
            # without end_scan — abort_scan is the manager's cleanup
            # path for members that vanish mid-group.
            result.aborted = True
        finally:
            if result.aborted:
                manager.abort_scan(scan_id)
            else:
                manager.end_scan(scan_id)
        result.finished_at = db.sim.now
        return result

    def _report_location(
        self, scan_id: int, pages_done: int, result: ScanResult
    ) -> Generator:
        db = self.db
        wait = db.sharing.update_location(scan_id, pages_done)
        yield from db.charge_manager_call_overhead()
        if wait > 0:
            result.throttle_seconds += wait
            yield db.sim.timeout(wait)

    def _extent_keys(self, page_no: int) -> tuple:
        """``(extent_no, first_page_of_extent, keys)`` for the whole
        extent containing ``page_no`` — the prefetch unit.  The keys come
        from the catalog's interned per-table arrays: a cache hit, not an
        allocation per page."""
        table = self.table
        extent_no = table.extent_of(page_no)
        return (
            extent_no,
            extent_no * table.extent_size,
            self.db.catalog.extent_keys(table.name, extent_no),
        )
