"""Scan operators.

:class:`~repro.scans.table_scan.TableScan` is the vanilla operator (the
paper's "Base"): it reads its range front-to-back and releases every page
with NORMAL priority, never talking to the sharing manager.

:class:`~repro.scans.shared_scan.SharedTableScan` is the paper's sharing
scan: it registers with the manager, may start mid-range and wrap around,
reports its location every *update interval* pages (receiving inserted
throttle waits), and releases pages with the manager-chosen priority.
"""

from repro.scans.base import ScanResult, scan_order
from repro.scans.table_scan import TableScan
from repro.scans.shared_scan import SharedTableScan

__all__ = ["ScanResult", "SharedTableScan", "TableScan", "scan_order"]
