"""The vanilla table scan operator (the paper's "Base" configuration)."""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.buffer.page import Priority
from repro.scans.base import ScanResult
from repro.storage.datagen import PageData

OnPage = Callable[[int, PageData], float]


class TableScan:
    """Sequential scan of a page range with fixed release priority.

    Mirrors the paper's IXSCAN-analog for tables: loop over the range in
    order, perform per-page work, release each page with a fixed
    priority.  No sharing-manager interaction whatsoever.

    Args:
        database: Execution context exposing ``sim``, ``pool``, ``cpu``,
            ``catalog`` (duck-typed; see :class:`repro.engine.database.Database`).
        table_name: Table to scan.
        first_page / last_page: Inclusive page range.
        on_page: Callback invoked with ``(page_no, page_data)``; returns
            the CPU seconds to charge for processing that page.
        record_visits: Keep the visited page order in the result (tests).
    """

    def __init__(
        self,
        database: Any,
        table_name: str,
        first_page: int,
        last_page: int,
        on_page: OnPage,
        record_visits: bool = False,
    ):
        self.db = database
        self.table = database.catalog.table(table_name)
        if not 0 <= first_page <= last_page < self.table.n_pages:
            raise ValueError(
                f"bad scan range [{first_page}, {last_page}] on table "
                f"{table_name!r} of {self.table.n_pages} pages"
            )
        self.first_page = first_page
        self.last_page = last_page
        self.on_page = on_page
        self.record_visits = record_visits

    def run(self) -> Generator:
        """Simulation process body; returns a :class:`ScanResult`."""
        db = self.db
        result = ScanResult(
            table_name=self.table.name,
            first_page=self.first_page,
            last_page=self.last_page,
            start_page=self.first_page,
            started_at=db.sim.now,
        )
        for page_no in range(self.first_page, self.last_page + 1):
            yield from self._process_page(page_no, result)
        result.finished_at = db.sim.now
        return result

    def _process_page(self, page_no: int, result: ScanResult) -> Generator:
        db = self.db
        key = db.catalog.page_key(self.table.name, page_no)
        prefetch = self._prefetch_run(page_no)
        frame = yield from db.pool.fix(key, prefetch=prefetch)
        assert frame.key == key
        try:
            data = self.table.page_data(page_no)
            cpu_seconds = self.on_page(page_no, data)
            if cpu_seconds > 0:
                yield db.cpu.acquire()
                try:
                    yield db.sim.timeout(cpu_seconds)
                finally:
                    db.cpu.release()
        finally:
            # Never leak a pin, even when page processing raises.
            db.pool.unfix(key, self._release_priority())
        result.pages_scanned += 1
        result.rows_seen += self.table.schema.rows_per_page
        result.cpu_seconds += cpu_seconds
        if self.record_visits:
            result.visited_pages.append(page_no)

    def _release_priority(self) -> Priority:
        return Priority.NORMAL

    def _prefetch_run(self, page_no: int) -> Optional[list]:
        extent_no = self.table.extent_of(page_no)
        pages = self.table.extent_pages(extent_no)
        return [db_key for db_key in self._keys(pages)]

    def _keys(self, pages: list) -> list:
        catalog = self.db.catalog
        name = self.table.name
        return [catalog.page_key(name, page) for page in pages]
