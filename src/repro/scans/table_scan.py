"""The vanilla table scan operator (the paper's "Base" configuration)."""

from __future__ import annotations

from typing import Any, Callable, Generator

from repro.buffer.page import Priority
from repro.scans.base import ScanResult
from repro.storage.datagen import PageData

#: Per-page callback ``(page_no, page_data, n_rows) -> cpu_seconds``.
#: The scan passes the row count explicitly — a pipeline must not infer
#: it from a column, since projection pushdown can compact a page to
#: zero columns.
OnPage = Callable[[int, PageData, int], float]


class TableScan:
    """Sequential scan of a page range with fixed release priority.

    Mirrors the paper's IXSCAN-analog for tables: loop over the range in
    order, perform per-page work, release each page with a fixed
    priority.  No sharing-manager interaction whatsoever.

    Args:
        database: Execution context exposing ``sim``, ``pool``, ``cpu``,
            ``catalog`` (duck-typed; see :class:`repro.engine.database.Database`).
        table_name: Table to scan.
        first_page / last_page: Inclusive page range.
        on_page: Callback invoked with ``(page_no, page_data, n_rows)``;
            returns the CPU seconds to charge for processing that page.
        record_visits: Keep the visited page order in the result (tests).
    """

    def __init__(
        self,
        database: Any,
        table_name: str,
        first_page: int,
        last_page: int,
        on_page: OnPage,
        record_visits: bool = False,
    ):
        self.db = database
        self.table = database.catalog.table(table_name)
        if not 0 <= first_page <= last_page < self.table.n_pages:
            raise ValueError(
                f"bad scan range [{first_page}, {last_page}] on table "
                f"{table_name!r} of {self.table.n_pages} pages"
            )
        self.first_page = first_page
        self.last_page = last_page
        self.on_page = on_page
        self.record_visits = record_visits

    def run(self) -> Generator:
        """Simulation process body; returns a :class:`ScanResult`.

        The inner loop is batched per prefetch extent: page keys are
        built once per extent (not once per page), the release priority
        is computed once per run, and resident pages are pinned through
        the pool's non-generator :meth:`~repro.buffer.pool.BufferPool.\
try_fix` fast path — :meth:`~repro.buffer.pool.BufferPool.fix` is only
        driven on a miss or an in-flight wait.  The page visit order,
        prefetch runs, and release priorities are identical to the naive
        per-page formulation, so every metric digest is unchanged.
        """
        db = self.db
        sim = db.sim
        pool = db.pool
        cpu = db.cpu
        table = self.table
        on_page = self.on_page
        try_fix = pool.try_fix
        rows_per_page = table.schema.rows_per_page
        priority = self._release_priority()
        record_visits = self.record_visits
        result = ScanResult(
            table_name=table.name,
            first_page=self.first_page,
            last_page=self.last_page,
            start_page=self.first_page,
            started_at=sim.now,
        )
        extent_no = -1
        extent_start = 0
        extent_keys: list = []
        for page_no in range(self.first_page, self.last_page + 1):
            if table.extent_of(page_no) != extent_no:
                extent_no, extent_start, extent_keys = self._extent_keys(page_no)
            key = extent_keys[page_no - extent_start]
            frame = try_fix(key)
            if frame is None:
                frame = yield from pool.fix(key, prefetch=extent_keys)
            assert frame.key == key
            try:
                data = table.page_data(page_no)
                cpu_seconds = on_page(page_no, data, rows_per_page)
                if cpu_seconds > 0:
                    yield cpu.acquire()
                    try:
                        yield sim.timeout(cpu_seconds)
                    finally:
                        cpu.release()
            finally:
                # Never leak a pin, even when page processing raises.
                pool.unfix(key, priority)
            result.pages_scanned += 1
            result.rows_seen += rows_per_page
            result.cpu_seconds += cpu_seconds
            if record_visits:
                result.visited_pages.append(page_no)
        result.finished_at = sim.now
        return result

    def _release_priority(self) -> Priority:
        return Priority.NORMAL

    def _extent_keys(self, page_no: int) -> tuple:
        """``(extent_no, first_page_of_extent, keys)`` for the whole
        extent containing ``page_no`` — the prefetch unit.  The keys come
        from the catalog's interned per-table arrays: a cache hit, not an
        allocation per page."""
        table = self.table
        extent_no = table.extent_of(page_no)
        return (
            extent_no,
            extent_no * table.extent_size,
            self.db.catalog.extent_keys(table.name, extent_no),
        )
