"""Shared plumbing for scan operators."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List


@dataclass
class ScanResult:
    """What a finished scan reports back to its query."""

    table_name: str
    first_page: int
    last_page: int
    start_page: int
    pages_scanned: int = 0
    rows_seen: int = 0
    cpu_seconds: float = 0.0
    throttle_seconds: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    visited_pages: List[int] = field(default_factory=list)
    # True when the scan was killed by fault injection and the numbers
    # above cover only the pages it reached.
    aborted: bool = False

    @property
    def elapsed(self) -> float:
        """Wall-clock (simulated) scan duration."""
        return self.finished_at - self.started_at


def scan_order(first_page: int, last_page: int, start_page: int) -> Iterator[int]:
    """Page visit order for a wrap-around scan of ``[first, last]``.

    Phase one runs from ``start_page`` to ``last_page``; phase two wraps
    to ``first_page`` and stops just before ``start_page`` — the paper's
    two back-to-back scans over adjacent ranges.
    """
    if not first_page <= start_page <= last_page:
        raise ValueError(
            f"start page {start_page} outside range [{first_page}, {last_page}]"
        )
    for page in range(start_page, last_page + 1):
        yield page
    for page in range(first_page, start_page):
        yield page
