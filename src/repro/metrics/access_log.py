"""Workload sharing-potential analysis.

The paper motivates the mechanism with an analysis of a customer
warehouse: 150 users, 215 query types, 553 scans, two tables with more
than 100 scans each — a workload dripping with sharing potential.  This
module performs the same style of analysis on any executed workload:
how many scans hit each table, how many pages were requested versus
distinct, and how much of the re-read volume came from *temporally
overlapping* scans (the part the sharing mechanism can actually win
back).

Requires the workload to have been run with
``SystemConfig(record_page_visits=True)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.metrics.report import format_table
from repro.scans.base import ScanResult

if TYPE_CHECKING:  # avoid a circular import; engine imports metrics
    from repro.engine.executor import WorkloadResult


@dataclass
class TablePotential:
    """Sharing-potential summary for one table."""

    table: str
    n_scans: int = 0
    pages_requested: int = 0
    distinct_pages: int = 0
    overlapping_pairs: int = 0
    overlapping_shared_pages: int = 0

    @property
    def re_read_pages(self) -> int:
        """Pages requested more than once across the workload."""
        return self.pages_requested - self.distinct_pages

    @property
    def potential_fraction(self) -> float:
        """Fraction of requests that were re-reads (upper bound on what
        perfect sharing could save for this table)."""
        if self.pages_requested == 0:
            return 0.0
        return self.re_read_pages / self.pages_requested


@dataclass
class SharingPotentialReport:
    """Whole-workload analysis (the paper's customer-scenario style)."""

    tables: Dict[str, TablePotential] = field(default_factory=dict)

    @property
    def total_scans(self) -> int:
        return sum(t.n_scans for t in self.tables.values())

    def hot_tables(self, min_scans: int = 10) -> List[TablePotential]:
        """Tables with at least ``min_scans`` scans, hottest first."""
        return sorted(
            (t for t in self.tables.values() if t.n_scans >= min_scans),
            key=lambda t: -t.n_scans,
        )

    def render(self) -> str:
        rows = []
        for potential in sorted(self.tables.values(), key=lambda t: -t.n_scans):
            rows.append([
                potential.table,
                potential.n_scans,
                potential.pages_requested,
                potential.distinct_pages,
                f"{100 * potential.potential_fraction:.0f}%",
                potential.overlapping_pairs,
            ])
        return format_table(
            ["table", "scans", "pages requested", "distinct",
             "re-read share", "overlapping scan pairs"],
            rows,
        )


def collect_scans(workload: "WorkloadResult") -> List[ScanResult]:
    """Every scan executed in the workload, in completion order."""
    scans: List[ScanResult] = []
    for stream in workload.streams:
        for query in stream.queries:
            for step in query.steps:
                scans.append(step.scan)
    return scans


def _intervals_overlap(a: ScanResult, b: ScanResult) -> bool:
    return a.started_at < b.finished_at and b.started_at < a.finished_at


def analyze_sharing_potential(workload: "WorkloadResult") -> SharingPotentialReport:
    """Build the sharing-potential report from recorded page visits.

    Raises if the scans carry no visit traces (run the workload with
    ``record_page_visits=True``).
    """
    scans = collect_scans(workload)
    if scans and all(not scan.visited_pages for scan in scans):
        raise ValueError(
            "no page visits recorded; run the workload with "
            "SystemConfig(record_page_visits=True)"
        )
    report = SharingPotentialReport()
    by_table: Dict[str, List[ScanResult]] = {}
    for scan in scans:
        by_table.setdefault(scan.table_name, []).append(scan)

    for table, table_scans in by_table.items():
        potential = TablePotential(table=table)
        potential.n_scans = len(table_scans)
        distinct = set()
        for scan in table_scans:
            potential.pages_requested += len(scan.visited_pages)
            distinct.update(scan.visited_pages)
        potential.distinct_pages = len(distinct)
        # Temporal overlap: the savings the mechanism can actually reach.
        page_sets = [set(scan.visited_pages) for scan in table_scans]
        for i in range(len(table_scans)):
            for j in range(i + 1, len(table_scans)):
                if not _intervals_overlap(table_scans[i], table_scans[j]):
                    continue
                shared = len(page_sets[i] & page_sets[j])
                if shared:
                    potential.overlapping_pairs += 1
                    potential.overlapping_shared_pages += shared
        report.tables[table] = potential
    return report


def scan_interval_table(workload: "WorkloadResult") -> List[Tuple[str, float, float, int]]:
    """(table, start, end, pages) rows for every scan — a gantt-style
    summary useful for eyeballing overlap structure."""
    return [
        (scan.table_name, scan.started_at, scan.finished_at, scan.pages_scanned)
        for scan in collect_scans(workload)
    ]
