"""Plain-text rendering of experiment results."""

from __future__ import annotations

import math
from typing import List, Mapping, Sequence


def percent_gain(base: float, improved: float) -> float:
    """Percentage improvement of ``improved`` over ``base`` (positive = better).

    Matches the paper's convention: a run that takes 79 s against a 100 s
    baseline is a 21 % gain.
    """
    if base == 0:
        return 0.0
    return 100.0 * (base - improved) / base


def percentile(values: Sequence[float], q: float) -> float:
    """Linearly interpolated percentile of ``values`` (``0 <= q <= 100``).

    Nearest-rank percentiles collapse on small samples — with three
    latencies, p95 == p99 == max, and the value jumps discontinuously
    as samples trickle in.  Interpolating between the two bracketing
    order statistics (numpy's default ``linear`` method) keeps service
    tables smooth and meaningful at the per-class sample sizes short
    sim runs produce.
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {q}")
    if not values:
        raise ValueError("cannot take a percentile of an empty sequence")
    ordered = sorted(float(v) for v in values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


#: Column order for :func:`format_service_table`; keys into each class row.
SERVICE_COLUMNS = (
    ("class", "class"),
    ("arrived", "n_arrived"),
    ("done", "n_completed"),
    ("abandoned", "n_abandoned"),
    ("wait_p50", "wait_p50"),
    ("wait_p99", "wait_p99"),
    ("lat_p50", "latency_p50"),
    ("lat_p95", "latency_p95"),
    ("lat_p99", "latency_p99"),
    ("qps", "throughput"),
    ("slo%", "slo_attainment"),
)


#: Columns that only mean something once a request has completed.
_COMPLETION_COLUMNS = frozenset(
    ("latency_p50", "latency_p95", "latency_p99", "throughput",
     "slo_attainment")
)

#: Columns that only mean something once a request has arrived.
_ARRIVAL_COLUMNS = frozenset(("wait_p50", "wait_p99"))


def format_service_table(
    class_rows: Sequence[Mapping[str, object]],
    fleet_row: bool = False,
) -> str:
    """Render per-class service metrics as an aligned table.

    Each row is a mapping with the keys named in :data:`SERVICE_COLUMNS`
    (``ClassMetrics.as_dict()`` produces exactly this shape); missing or
    ``None`` values render as ``-`` so classes without an SLO still line
    up.  A class with zero completions (all abandoned, or starved
    entirely) dashes its latency/throughput/SLO columns instead of
    printing misleading zeros, and a class with zero arrivals dashes
    its wait columns too — the table never divides by or ranks an
    empty sample.

    With ``fleet_row=True`` the final row is treated as a fleet-wide
    aggregate (see :func:`fleet_aggregate_row`) and is set off from the
    per-class rows by a rule.
    """
    headers = [header for header, _ in SERVICE_COLUMNS]
    rows = []
    for row in class_rows:
        completed = row.get("n_completed") or 0
        arrived = row.get("n_arrived") or 0
        cells: List[object] = []
        for header, key in SERVICE_COLUMNS:
            value = row.get(key)
            if key in _COMPLETION_COLUMNS and completed == 0:
                cells.append("-")
            elif key in _ARRIVAL_COLUMNS and arrived == 0:
                cells.append("-")
            elif value is None:
                cells.append("-")
            elif key == "slo_attainment" and isinstance(value, float):
                cells.append(f"{100.0 * value:.1f}")
            else:
                cells.append(value)
        rows.append(cells)
    table = format_table(headers, rows)
    if fleet_row and len(rows) >= 1:
        lines = table.split("\n")
        # Repeat the header rule above the aggregate row.
        lines.insert(len(lines) - 1, lines[1])
        table = "\n".join(lines)
    return table


def fleet_aggregate_row(
    class_rows: Sequence[Mapping[str, object]],
    label: str = "FLEET",
) -> dict:
    """Reduce per-replica class rows into one aggregate row.

    Counts sum; throughput sums (replicas complete work concurrently);
    wait/latency percentiles combine as completion-weighted means of
    the per-row percentiles — an approximation (the true fleet
    percentile needs the raw samples), but a stable, monotone one that
    is exact whenever the replicas are statistically interchangeable.
    SLO attainment combines completion-weighted over the rows that
    carry one, staying ``None`` when none do.
    """
    total_arrived = sum(int(row.get("n_arrived") or 0) for row in class_rows)
    total_completed = sum(int(row.get("n_completed") or 0) for row in class_rows)
    total_abandoned = sum(int(row.get("n_abandoned") or 0) for row in class_rows)

    def weighted(key: str, count_key: str) -> float:
        pairs = [
            (float(row.get(key) or 0.0), int(row.get(count_key) or 0))
            for row in class_rows
        ]
        total = sum(count for _, count in pairs)
        if total == 0:
            return 0.0
        return sum(value * count for value, count in pairs) / total

    slo_pairs = [
        (float(row["slo_attainment"]), int(row.get("n_completed") or 0))
        for row in class_rows
        if row.get("slo_attainment") is not None
    ]
    slo_weight = sum(count for _, count in slo_pairs)
    return {
        "class": label,
        "n_arrived": total_arrived,
        "n_completed": total_completed,
        "n_abandoned": total_abandoned,
        "wait_p50": weighted("wait_p50", "n_arrived"),
        "wait_p99": weighted("wait_p99", "n_arrived"),
        "latency_p50": weighted("latency_p50", "n_completed"),
        "latency_p95": weighted("latency_p95", "n_completed"),
        "latency_p99": weighted("latency_p99", "n_completed"),
        "throughput": sum(
            float(row.get("throughput") or 0.0) for row in class_rows
        ),
        "slo_attainment": (
            sum(value * count for value, count in slo_pairs) / slo_weight
            if slo_weight
            else None
        ),
    }


#: Column order for :func:`format_policy_table`; keys into each row.
POLICY_COLUMNS = (
    ("policy", "policy"),
    ("makespan (s)", "makespan"),
    ("pages read", "pages_read"),
    ("seeks", "seeks"),
    ("hit %", "hit_percent"),
    ("throttle waits", "throttle_waits"),
    ("joins", "scans_joined"),
    ("e2e gain %", "end_to_end_gain_percent"),
    ("read gain %", "disk_read_gain_percent"),
)


def format_policy_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render a sharing-policy comparison as an aligned table.

    Each row is a mapping with the keys named in :data:`POLICY_COLUMNS`
    (``PolicyRunResult.row()`` produces exactly this shape); missing or
    ``None`` values render as ``-``, so a baseline row without gain
    columns still lines up.
    """
    headers = [header for header, _ in POLICY_COLUMNS]
    rendered = []
    for row in rows:
        cells: List[object] = []
        for _, key in POLICY_COLUMNS:
            value = row.get(key)
            cells.append("-" if value is None else value)
        rendered.append(cells)
    return format_table(headers, rendered)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells but table has {columns} columns: {row!r}"
            )
    rendered_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in rendered_rows))
        if rendered_rows
        else len(str(headers[i]))
        for i in range(columns)
    ]
    lines = [
        "  ".join(str(headers[i]).ljust(widths[i]) for i in range(columns)),
        "  ".join("-" * widths[i] for i in range(columns)),
    ]
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def format_series(label: str, values: Sequence[float], width: int = 50) -> str:
    """Render a numeric series as a one-line-per-bucket ASCII bar chart."""
    if not values:
        return f"{label}: (empty)"
    peak = max(values) or 1.0
    lines = [f"{label}:"]
    for index, value in enumerate(values):
        bar = "#" * max(0, int(width * value / peak))
        lines.append(f"  [{index:3d}] {value:12.2f} {bar}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
