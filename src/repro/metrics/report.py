"""Plain-text rendering of experiment results."""

from __future__ import annotations

from typing import List, Sequence


def percent_gain(base: float, improved: float) -> float:
    """Percentage improvement of ``improved`` over ``base`` (positive = better).

    Matches the paper's convention: a run that takes 79 s against a 100 s
    baseline is a 21 % gain.
    """
    if base == 0:
        return 0.0
    return 100.0 * (base - improved) / base


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned monospace table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells but table has {columns} columns: {row!r}"
            )
    rendered_rows: List[List[str]] = [[_cell(value) for value in row] for row in rows]
    widths = [
        max(len(str(headers[i])), *(len(row[i]) for row in rendered_rows))
        if rendered_rows
        else len(str(headers[i]))
        for i in range(columns)
    ]
    lines = [
        "  ".join(str(headers[i]).ljust(widths[i]) for i in range(columns)),
        "  ".join("-" * widths[i] for i in range(columns)),
    ]
    for row in rendered_rows:
        lines.append("  ".join(row[i].ljust(widths[i]) for i in range(columns)))
    return "\n".join(lines)


def format_series(label: str, values: Sequence[float], width: int = 50) -> str:
    """Render a numeric series as a one-line-per-bucket ASCII bar chart."""
    if not values:
        return f"{label}: (empty)"
    peak = max(values) or 1.0
    lines = [f"{label}:"]
    for index, value in enumerate(values):
        bar = "#" * max(0, int(width * value / peak))
        lines.append(f"  [{index:3d}] {value:12.2f} {bar}")
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)
