"""ASCII gantt rendering of scan activity.

A quick way to *see* the mechanism working: each scan is a bar over
simulated time, grouped by table.  Under the baseline, bars on the same
table overlap with unaligned positions (invisible here, but the reads
double); under sharing, bars cluster and shorten.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

if TYPE_CHECKING:  # avoid a circular import; engine imports metrics
    from repro.engine.executor import WorkloadResult


def render_gantt(
    intervals: List[Tuple[str, float, float, int]],
    width: int = 72,
    label_width: int = 14,
) -> str:
    """Render (label, start, end, weight) rows as time bars.

    The horizon is the max end time; each row shows its label, its bar
    positioned proportionally, and the weight (e.g. pages scanned).
    """
    if not intervals:
        return "(no scans)"
    horizon = max(end for _label, _start, end, _w in intervals)
    if horizon <= 0:
        return "(empty horizon)"
    lines = []
    for label, start, end, weight in intervals:
        begin_col = int(width * start / horizon)
        end_col = max(begin_col + 1, int(width * end / horizon))
        bar = " " * begin_col + "#" * (end_col - begin_col)
        lines.append(f"{label[:label_width]:<{label_width}} |{bar:<{width}}| {weight}")
    scale = f"{'':<{label_width}} |0{'':<{width - 10}}{horizon:8.3f}s|"
    return "\n".join(lines + [scale])


def workload_gantt(workload: "WorkloadResult", width: int = 72) -> str:
    """Gantt of every scan in a workload, ordered by table then start."""
    from repro.metrics.access_log import collect_scans

    scans = collect_scans(workload)
    rows = sorted(
        (
            (scan.table_name, scan.started_at, scan.finished_at,
             scan.pages_scanned)
            for scan in scans
        ),
        key=lambda row: (row[0], row[1]),
    )
    return render_gantt(rows, width=width)
