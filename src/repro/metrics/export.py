"""Serializing run results to JSON and CSV.

A reproduction is only useful if its numbers can leave the process:
these helpers flatten :class:`~repro.engine.executor.WorkloadResult`
objects (and experiment comparisons) into plain dictionaries, JSON
strings, and CSV files that downstream plotting/analysis scripts can
consume without importing the library.
"""

from __future__ import annotations

import csv
import io
import json
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

if TYPE_CHECKING:  # avoid a circular import; engine imports metrics
    from repro.engine.executor import WorkloadResult
    from repro.experiments.runner import SuiteResult
    from repro.trace.events import TraceEvent


def workload_to_dict(result: "WorkloadResult", label: str = "") -> Dict:
    """A JSON-serializable summary of one workload run."""
    return {
        "label": label,
        "makespan": result.makespan,
        "end_time": result.end_time,
        "pages_read": result.pages_read,
        "physical_requests": result.physical_requests,
        "seeks": result.seeks,
        "buffer_hit_ratio": result.buffer_hit_ratio,
        "throttle_seconds": result.throttle_seconds,
        "streams": [
            {
                "stream_id": stream.stream_id,
                "started_at": stream.started_at,
                "finished_at": stream.finished_at,
                "elapsed": stream.elapsed,
                "queries": [
                    {
                        "name": query.name,
                        "started_at": query.started_at,
                        "finished_at": query.finished_at,
                        "elapsed": query.elapsed,
                        "pages_scanned": query.pages_scanned,
                        "cpu_seconds": query.cpu_seconds,
                        "throttle_seconds": query.throttle_seconds,
                    }
                    for query in stream.queries
                ],
            }
            for stream in result.streams
        ],
    }


def workload_to_json(result: "WorkloadResult", label: str = "",
                     indent: Optional[int] = 2) -> str:
    """JSON text for one workload run."""
    return json.dumps(workload_to_dict(result, label=label), indent=indent)


def queries_to_csv(result: "WorkloadResult") -> str:
    """One CSV row per executed query."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([
        "stream_id", "query", "started_at", "finished_at", "elapsed",
        "pages_scanned", "cpu_seconds", "throttle_seconds",
    ])
    for stream in result.streams:
        for query in stream.queries:
            writer.writerow([
                stream.stream_id, query.name, f"{query.started_at:.6f}",
                f"{query.finished_at:.6f}", f"{query.elapsed:.6f}",
                query.pages_scanned, f"{query.cpu_seconds:.6f}",
                f"{query.throttle_seconds:.6f}",
            ])
    return buffer.getvalue()


def series_to_csv(series: Dict[str, List[float]]) -> str:
    """Column-per-key CSV for bucketed time series (E5/E6 exports)."""
    if not series:
        return ""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    names = sorted(series)
    writer.writerow(["bucket"] + names)
    length = max(len(values) for values in series.values())
    for index in range(length):
        row = [index]
        for name in names:
            values = series[name]
            row.append(f"{values[index]:.6f}" if index < len(values) else "")
        writer.writerow(row)
    return buffer.getvalue()


def trace_to_jsonl(events: Sequence["TraceEvent"]) -> str:
    """One JSON object per line for captured trace events.

    Produces the same format :class:`repro.trace.sinks.JsonlSink` streams
    to disk, for exporting a ring-buffer capture after the fact.
    """
    return "".join(
        json.dumps(event.to_dict(), sort_keys=True) + "\n" for event in events
    )


def suite_to_dict(suite: "SuiteResult") -> Dict:
    """The consolidated ``results.json`` artifact for one suite run.

    Deterministic metrics (and their digests) are kept separate from the
    volatile provenance fields (wall-clock timings, cache hit/miss), so
    two runs of the same configuration produce byte-identical
    ``experiments[*].metrics`` sections even when their timings differ.
    """
    return {
        "schema": "repro-suite-v1",
        "base_seed": suite.base_seed,
        "code_fingerprint": suite.code_fingerprint,
        "jobs": suite.jobs,
        "wall_seconds": suite.wall_seconds,
        "cache_hits": suite.cache_hits,
        "suite_digest": suite.suite_digest(),
        "experiments": [
            {
                "experiment": task.experiment,
                "sweep_point": task.sweep_point,
                "label": task.label,
                "seed": task.seed,
                "metrics": task.metrics,
                "metrics_digest": task.digest,
                "elapsed_seconds": task.elapsed_seconds,
                "cache": task.cache,
            }
            for task in suite.tasks
        ],
    }


def suite_to_json(suite: "SuiteResult", indent: Optional[int] = 2) -> str:
    """JSON text of the consolidated suite artifact."""
    return json.dumps(suite_to_dict(suite), indent=indent, sort_keys=True)


def write_suite_json(suite: "SuiteResult", path: str) -> None:
    """Write the consolidated suite artifact to ``path``."""
    with open(path, "w") as handle:
        handle.write(suite_to_json(suite))
        handle.write("\n")


def comparison_to_dict(base: "WorkloadResult", shared: "WorkloadResult") -> Dict:
    """Base-vs-SS summary with the paper's three gains."""
    from repro.metrics.report import percent_gain

    return {
        "base": workload_to_dict(base, label="Base"),
        "shared": workload_to_dict(shared, label="SS"),
        "end_to_end_gain_percent": percent_gain(base.makespan, shared.makespan),
        "disk_read_gain_percent": percent_gain(base.pages_read, shared.pages_read),
        "disk_seek_gain_percent": percent_gain(float(base.seeks),
                                               float(shared.seeks)),
    }
