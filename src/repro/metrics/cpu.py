"""iostat-style CPU accounting from simulator timelines.

The paper's staggered-query figures show the distribution of CPU time
over *user*, *system*, *idle*, and *I/O wait*.  We derive the same four
buckets from two step-functions the simulator records anyway:

* the CPU resource's busy count ``b(t)`` (0..cores), and
* the disk's outstanding-request count ``d(t)``.

Definitions (matching iostat semantics):

* **user**    = ∫ b(t) dt / (cores · T) — time cores spent running query work;
* **system**  = (physical I/O requests · per-request kernel cost) / (cores · T);
* **iowait**  = ∫ (cores − b(t)) · [d(t) > 0] dt / (cores · T) — idle
  capacity while at least one I/O was pending;
* **idle**    = the remainder.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.sim.timeline import StepTimeline


@dataclass(frozen=True)
class CpuBreakdown:
    """Fractions of total CPU capacity over a run (sum to 1)."""

    user: float
    system: float
    idle: float
    iowait: float

    def as_dict(self) -> dict:
        """Bucket name -> fraction."""
        return {
            "user": self.user,
            "system": self.system,
            "idle": self.idle,
            "iowait": self.iowait,
        }


def _merged_changes(
    a: StepTimeline, b: StepTimeline, until: float
) -> List[Tuple[float, float, float, float]]:
    """Merge two step functions into segments (start, end, level_a, level_b)."""
    points_a = list(a.change_points())
    points_b = list(b.change_points())
    times = sorted({t for t, _ in points_a} | {t for t, _ in points_b} | {0.0, until})
    segments: List[Tuple[float, float, float, float]] = []
    for i in range(len(times) - 1):
        start, end = times[i], times[i + 1]
        if start >= until:
            break
        end = min(end, until)
        if end <= start:
            continue
        segments.append((start, end, a.level_at(start), b.level_at(start)))
    return segments


def compute_cpu_breakdown(
    cpu_busy: StepTimeline,
    disk_outstanding: StepTimeline,
    cores: int,
    until: float,
    io_requests: int = 0,
    syscall_cost: float = 0.0,
) -> CpuBreakdown:
    """Compute the four iostat buckets over ``[0, until]``."""
    if cores < 1:
        raise ValueError(f"cores must be >= 1, got {cores}")
    if until <= 0:
        raise ValueError(f"until must be positive, got {until}")
    capacity = cores * until
    user_time = 0.0
    iowait_time = 0.0
    for start, end, busy, outstanding in _merged_changes(
        cpu_busy, disk_outstanding, until
    ):
        duration = end - start
        user_time += min(busy, cores) * duration
        if outstanding > 0:
            iowait_time += max(0.0, cores - busy) * duration
    system_time = min(io_requests * syscall_cost, max(0.0, capacity - user_time))
    # The kernel time comes out of what would otherwise be idle/iowait
    # capacity; shave it off iowait first (I/O issue happens while waiting).
    iowait_time = max(0.0, iowait_time - system_time)
    idle_time = max(0.0, capacity - user_time - system_time - iowait_time)
    return CpuBreakdown(
        user=user_time / capacity,
        system=system_time / capacity,
        idle=idle_time / capacity,
        iowait=iowait_time / capacity,
    )
