"""Run-time collection of query/stream events."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass(frozen=True)
class QueryRecord:
    """One completed query execution."""

    stream_id: int
    query_name: str
    started_at: float
    finished_at: float
    pages_scanned: int
    cpu_seconds: float
    throttle_seconds: float

    @property
    def elapsed(self) -> float:
        """Simulated seconds the query took end to end."""
        return self.finished_at - self.started_at


class MetricsCollector:
    """Accumulates per-query records during a workload run."""

    def __init__(self) -> None:
        self._queries: List[QueryRecord] = []

    def record_query(self, record: QueryRecord) -> None:
        """Store one completed query."""
        self._queries.append(record)

    @property
    def queries(self) -> List[QueryRecord]:
        """All recorded queries in completion order."""
        return list(self._queries)

    def by_stream(self) -> Dict[int, List[QueryRecord]]:
        """Records grouped by stream id."""
        grouped: Dict[int, List[QueryRecord]] = {}
        for record in self._queries:
            grouped.setdefault(record.stream_id, []).append(record)
        return grouped

    def by_query_name(self) -> Dict[str, List[QueryRecord]]:
        """Records grouped by query template name."""
        grouped: Dict[str, List[QueryRecord]] = {}
        for record in self._queries:
            grouped.setdefault(record.query_name, []).append(record)
        return grouped

    def stream_elapsed(self, stream_id: int) -> float:
        """Span from a stream's first query start to its last query end."""
        records = self.by_stream().get(stream_id)
        if not records:
            raise KeyError(f"no records for stream {stream_id}")
        return max(r.finished_at for r in records) - min(r.started_at for r in records)

    def mean_query_elapsed(self, query_name: str) -> float:
        """Mean elapsed time of one query template across streams."""
        records = self.by_query_name().get(query_name)
        if not records:
            raise KeyError(f"no records for query {query_name!r}")
        return sum(r.elapsed for r in records) / len(records)

    def makespan(self) -> float:
        """End-to-end time: earliest start to latest finish."""
        if not self._queries:
            return 0.0
        return max(r.finished_at for r in self._queries) - min(
            r.started_at for r in self._queries
        )

    def total_throttle_seconds(self) -> float:
        """Total throttle waits served by all queries."""
        return sum(r.throttle_seconds for r in self._queries)
