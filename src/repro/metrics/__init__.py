"""Measurement layer: query timings, CPU breakdowns, report rendering.

Reproduces the observables the paper reports: per-query and per-stream
elapsed times, end-to-end makespan, iostat-style CPU distribution
(user / system / idle / iowait), and bucketed disk read/seek time series.
"""

from repro.metrics.access_log import (
    SharingPotentialReport,
    analyze_sharing_potential,
    collect_scans,
)
from repro.metrics.collector import MetricsCollector, QueryRecord
from repro.metrics.cpu import CpuBreakdown, compute_cpu_breakdown
from repro.metrics.export import (
    comparison_to_dict,
    queries_to_csv,
    series_to_csv,
    workload_to_dict,
    workload_to_json,
)
from repro.metrics.report import format_table, percent_gain

__all__ = [
    "CpuBreakdown",
    "MetricsCollector",
    "QueryRecord",
    "SharingPotentialReport",
    "analyze_sharing_potential",
    "collect_scans",
    "comparison_to_dict",
    "compute_cpu_breakdown",
    "format_table",
    "percent_gain",
    "queries_to_csv",
    "series_to_csv",
    "workload_to_dict",
    "workload_to_json",
]
