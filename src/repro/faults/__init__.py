"""Deterministic fault injection for the sharing stack.

The paper's mechanism is evaluated on clean runs; this package makes the
failure modes a production system must survive — scans dying mid-group,
disks degrading or throwing transient errors, bufferpool pressure
spikes — reproducible inside the simulator.  A :class:`FaultPlan` is a
pure value (parsed from a spec string plus a seed), a
:class:`FaultInjector` threads it through the disk, bufferpool, scan,
and manager layers, and an :class:`InvariantChecker` validates the
sharing invariants after every regroup and fault event.

Everything is seed-derived and scheduled on simulated time, so a fault
scenario replays byte-identically across processes — the same guarantee
the experiment runner gives clean runs.
"""

from repro.faults.injector import FaultInjector, FaultStats, ScanKilled
from repro.faults.invariants import InvariantChecker, InvariantViolation
from repro.faults.plan import (
    BUILTIN_PLANS,
    DiskDelayFault,
    DiskErrorFault,
    FaultPlan,
    FaultSpecError,
    PoolPressureFault,
    ScanKillFault,
    parse_fault_spec,
)

__all__ = [
    "BUILTIN_PLANS",
    "DiskDelayFault",
    "DiskErrorFault",
    "FaultInjector",
    "FaultPlan",
    "FaultSpecError",
    "FaultStats",
    "InvariantChecker",
    "InvariantViolation",
    "PoolPressureFault",
    "ScanKilled",
    "ScanKillFault",
    "parse_fault_spec",
]
