"""The fault injector: threads a :class:`FaultPlan` through the stack.

One injector exists per database.  ``attach`` wires it into the three
layers that can fail:

* the **disk** (or every member of a :class:`~repro.disk.array.DiskArray`)
  calls back into :meth:`disk_service_time` when starting a request and
  :meth:`maybe_disk_error` when one completes;
* the **bufferpool** has frames reserved/released on a simulated-time
  schedule for every pool-pressure window;
* the **scan sharing policy** gets its ``invariant_hook`` pointed at an
  :class:`~repro.faults.invariants.InvariantChecker`, and scan operators
  poll :meth:`maybe_kill_scan` once per page so kill clauses can strike
  at exact positions.

All randomness comes from one ``random.Random(plan.seed)`` whose draws
happen in simulated-event order, so a fault scenario replays
byte-identically — serial or under ``--jobs N`` — exactly like clean
experiment runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

from repro.faults.invariants import InvariantChecker
from repro.faults.plan import (
    DiskDelayFault,
    DiskErrorFault,
    FaultPlan,
    PoolPressureFault,
    ScanKillFault,
)
from repro.sim.kernel import Simulator
from repro.trace.events import (
    FaultDiskDelay,
    FaultDiskError,
    FaultPoolPressure,
    FaultScanKilled,
)
from repro.trace.tracer import get_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.buffer.pool import BufferPool
    from repro.core.policy import SharingPolicy
    from repro.disk.device import Disk, DiskRequest


class ScanKilled(RuntimeError):
    """Raised inside a scan operator when a kill clause strikes it."""

    def __init__(self, scan_id: int, pages_scanned: int):
        super().__init__(
            f"scan {scan_id} killed by fault injection after "
            f"{pages_scanned} pages"
        )
        self.scan_id = scan_id
        self.pages_scanned = pages_scanned


@dataclass
class FaultStats:
    """Counters for everything the injector did to a run."""

    scans_killed: int = 0
    disk_delayed_requests: int = 0
    disk_errors_injected: int = 0
    pool_pressure_events: int = 0

    @property
    def total_injected(self) -> int:
        """Total number of fault actions taken."""
        return (
            self.scans_killed
            + self.disk_delayed_requests
            + self.disk_errors_injected
            + self.pool_pressure_events
        )


class FaultInjector:
    """Executes a fault plan against one database's components."""

    def __init__(self, sim: Simulator, plan: FaultPlan):
        self.sim = sim
        self.plan = plan
        self.stats = FaultStats()
        self.checker: Optional[InvariantChecker] = None
        self._rng = random.Random(plan.seed)
        self._delay_faults: List[DiskDelayFault] = []
        self._error_faults: List[DiskErrorFault] = []
        self._pressure_faults: List[PoolPressureFault] = []
        self._kill_faults: List[ScanKillFault] = []
        self._kill_remaining: List[int] = []
        for fault in plan.faults:
            if isinstance(fault, DiskDelayFault):
                self._delay_faults.append(fault)
            elif isinstance(fault, DiskErrorFault):
                self._error_faults.append(fault)
            elif isinstance(fault, PoolPressureFault):
                self._pressure_faults.append(fault)
            elif isinstance(fault, ScanKillFault):
                self._kill_faults.append(fault)
                self._kill_remaining.append(fault.count)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def attach(
        self,
        disk: Optional[object] = None,
        pool: Optional["BufferPool"] = None,
        manager: Optional["SharingPolicy"] = None,
    ) -> None:
        """Hook the injector into the components it targets."""
        if disk is not None:
            disk.set_fault_injector(self)
        if pool is not None:
            for fault in self._pressure_faults:
                self._schedule_pressure(pool, fault)
        if manager is not None:
            self.checker = InvariantChecker(manager, pool)
            manager.invariant_hook = self._on_regroup

    def _on_regroup(self) -> None:
        # Called by the manager right after every group rebuild, when the
        # arc ordering is guaranteed fresh.
        if self.checker is not None:
            self.checker.run_checks(strict_order=True)

    def check_invariants(self) -> None:
        """Run a non-strict invariant pass (after a fault event)."""
        if self.checker is not None:
            self.checker.run_checks(strict_order=False)

    # ------------------------------------------------------------------
    # Bufferpool pressure
    # ------------------------------------------------------------------

    def _schedule_pressure(self, pool: "BufferPool", fault: PoolPressureFault) -> None:
        granted = {"pages": 0}

        def begin() -> None:
            requested = int(pool.capacity * fault.fraction)
            granted["pages"] = pool.reserve(requested)
            self.stats.pool_pressure_events += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit(FaultPoolPressure(
                    time=self.sim.now, reserved=granted["pages"],
                    effective_capacity=pool.effective_capacity,
                ))
            self.check_invariants()

        def end() -> None:
            released = pool.release_reserved(granted["pages"])
            self.stats.pool_pressure_events += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit(FaultPoolPressure(
                    time=self.sim.now, released=released,
                    effective_capacity=pool.effective_capacity,
                ))
            self.check_invariants()

        self.sim.schedule(max(0.0, fault.start - self.sim.now), begin)
        if fault.until != float("inf"):
            self.sim.schedule(max(0.0, fault.until - self.sim.now), end)

    # ------------------------------------------------------------------
    # Disk hooks
    # ------------------------------------------------------------------

    def disk_service_time(self, disk: "Disk", service_time: float) -> float:
        """Stretch a service time by every delay window active right now.

        Clauses with a ``device`` index only strike the matching spindle
        of a striped array.
        """
        factor = 1.0
        now = self.sim.now
        device_index = disk.device_index
        for fault in self._delay_faults:
            if fault.active_at(now) and fault.matches_device(device_index):
                factor *= fault.factor
        if factor == 1.0:
            return service_time
        self.stats.disk_delayed_requests += 1
        tracer = get_tracer()
        if tracer.enabled:
            request = disk._active
            tracer.emit(FaultDiskDelay(
                time=now,
                start_page=request.start_page if request is not None else -1,
                factor=factor,
            ))
        return service_time * factor

    def maybe_disk_error(
        self, disk: "Disk", request: "DiskRequest"
    ) -> Optional[float]:
        """Decide whether a completing request fails transiently.

        Returns the retry backoff in seconds, or ``None`` to let the
        request complete.  After ``max_retries`` attempts the request is
        always allowed through, so errors degrade but never wedge.
        """
        now = self.sim.now
        device_index = disk.device_index
        for fault in self._error_faults:
            if not fault.active_at(now) or request.retries >= fault.max_retries:
                continue
            if not fault.matches_device(device_index):
                continue
            if self._rng.random() >= fault.rate:
                continue
            backoff = fault.backoff * (2 ** request.retries)
            self.stats.disk_errors_injected += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit(FaultDiskError(
                    time=now, start_page=request.start_page,
                    n_pages=request.n_pages, retries=request.retries + 1,
                    backoff=backoff,
                ))
            return backoff
        return None

    # ------------------------------------------------------------------
    # Scan kills
    # ------------------------------------------------------------------

    def maybe_kill_scan(
        self, manager: "SharingPolicy", scan_id: int, pages_scanned: int
    ) -> None:
        """Raise :class:`ScanKilled` if a kill clause targets this scan now.

        Scan operators call this once per page, *before* pinning, so a
        kill never leaks a pinned frame.
        """
        if not self._kill_faults:
            return
        try:
            state = manager.scan_state(scan_id)
        except KeyError:
            return
        for index, fault in enumerate(self._kill_faults):
            if self._kill_remaining[index] <= 0:
                continue
            if pages_scanned < fault.at * state.range_pages:
                continue
            if not self._kill_matches(manager, state, fault):
                continue
            self._kill_remaining[index] -= 1
            self.stats.scans_killed += 1
            tracer = get_tracer()
            if tracer.enabled:
                tracer.emit(FaultScanKilled(
                    time=self.sim.now, scan_id=scan_id,
                    target=fault.target, pages_scanned=pages_scanned,
                ))
            raise ScanKilled(scan_id, pages_scanned)

    def _kill_matches(
        self, manager: "SharingPolicy", state, fault: ScanKillFault
    ) -> bool:
        if fault.target == "any":
            return True
        if fault.target == "nth":
            return state.scan_id == fault.nth
        group = manager.group_of(state.scan_id)
        if group is None or group.size <= 1:
            return False
        if fault.target == "leader":
            return state.scan_id == group.leader.scan_id
        if fault.target == "trailer":
            return state.scan_id == group.trailer.scan_id
        # "anchor": the rear-most non-exempt, unfinished member other
        # than the leader — exactly what evaluate_throttle waits on.
        anchors = [
            member
            for member in group.members
            if member.scan_id != group.leader.scan_id
            and not member.finished
            and not member.throttle_exempt
        ]
        return bool(anchors) and anchors[0].scan_id == state.scan_id
