"""Fault plans: pure, deterministic descriptions of what to break.

A plan is parsed from a compact spec string — the same grammar the CLI's
``chaos`` command and the experiment runner's ``fault_spec`` setting
accept — plus a seed that derives every random draw the injector will
make.  Two plans built from the same (spec, seed) pair inject byte-
identical fault schedules, which is what lets chaos runs share the
runner's determinism guarantees.

Spec grammar (clauses separated by ``;``, options by ``,``)::

    scan-kill[:target=leader,at=0.4,count=1,nth=0,replica=-1]
    disk-delay[:factor=4.0,from=0.0,until=inf,device=-1,replica=-1]
    disk-error[:rate=0.05,from=0.0,until=inf,max_retries=4,backoff=0.002,device=-1,replica=-1]
    pool-pressure[:fraction=0.5,from=0.0,until=inf,replica=-1]

``device`` pins a disk clause to one spindle of a striped array
(``device=-1``, the default, hits every device).  ``replica`` pins any
clause to one replica of a cluster run (``replica=-1``, the default,
applies everywhere — including single-node runs, which ignore the
field): the cluster service filters each replica's plan with
:meth:`FaultPlan.for_replica` *before* building that replica's
injector, so killing one replica's scans never perturbs the RNG draws
of the others.

Builtin aliases expand to tuned clauses: ``leader-abort``,
``trailer-abort``, ``disk-degrade``, ``disk-errors``, ``pool-pressure``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Dict, Tuple, Union

#: Selectors a scan-kill clause may target.
KILL_TARGETS = ("any", "leader", "trailer", "anchor", "nth")


class FaultSpecError(ValueError):
    """Raised for an unparsable or out-of-range fault spec."""


@dataclass(frozen=True)
class ScanKillFault:
    """Kill scans mid-flight, modelling a query abort / process death.

    The victim dies *without* calling ``end_scan``: the scan operator
    raises :class:`~repro.faults.injector.ScanKilled` and the manager
    learns of the death only through ``abort_scan`` — the cleanup path a
    production system's health checker would drive.

    ``target`` selects the victim the moment it crosses ``at`` (a
    fraction of its scan range): ``leader``/``trailer`` require the
    matching group flag in a multi-member group, ``anchor`` the group's
    current throttle anchor (the rear-most non-exempt live member),
    ``nth`` the scan with id ``nth``, ``any`` the first scan to arrive.
    ``count`` bounds how many scans the clause kills in total.
    """

    target: str = "any"
    at: float = 0.5
    count: int = 1
    nth: int = 0
    #: Restrict the clause to one cluster replica (-1 = everywhere).
    replica: int = -1

    kind = "scan-kill"

    def __post_init__(self) -> None:
        if self.target not in KILL_TARGETS:
            raise FaultSpecError(
                f"scan-kill target must be one of {KILL_TARGETS}, got {self.target!r}"
            )
        if not 0.0 <= self.at <= 1.0:
            raise FaultSpecError(f"scan-kill at must be in [0, 1], got {self.at}")
        if self.count < 1:
            raise FaultSpecError(f"scan-kill count must be >= 1, got {self.count}")
        if self.replica < -1:
            raise FaultSpecError(
                f"scan-kill replica must be >= 0 (or -1 for all), got {self.replica}"
            )

    def matches_replica(self, replica_index: int) -> bool:
        """Whether the clause applies to a given cluster replica."""
        return self.replica < 0 or self.replica == replica_index


@dataclass(frozen=True)
class DiskDelayFault:
    """Multiply disk service times by ``factor`` inside a time window.

    Models a degrading device (vibration, remapped sectors, a busy
    neighbour on shared storage).  ``from``/``until`` bound the window in
    simulated seconds; ``until=inf`` degrades the device for the rest of
    the run.  ``device`` restricts the fault to one spindle of a striped
    array (-1, the default, degrades every device — and the lone disk of
    a single-device system).
    """

    factor: float = 4.0
    start: float = 0.0
    until: float = math.inf
    device: int = -1
    #: Restrict the clause to one cluster replica (-1 = everywhere).
    replica: int = -1

    kind = "disk-delay"

    def __post_init__(self) -> None:
        if self.factor < 1.0:
            raise FaultSpecError(
                f"disk-delay factor must be >= 1, got {self.factor}"
            )
        if self.start < 0 or self.until < self.start:
            raise FaultSpecError(
                f"disk-delay window must satisfy 0 <= from <= until, got "
                f"[{self.start}, {self.until}]"
            )
        if self.device < -1:
            raise FaultSpecError(
                f"disk-delay device must be >= 0 (or -1 for all), got {self.device}"
            )
        if self.replica < -1:
            raise FaultSpecError(
                f"disk-delay replica must be >= 0 (or -1 for all), got {self.replica}"
            )

    def matches_replica(self, replica_index: int) -> bool:
        """Whether the clause applies to a given cluster replica."""
        return self.replica < 0 or self.replica == replica_index

    def active_at(self, now: float) -> bool:
        """Whether the window covers simulated time ``now``."""
        return self.start <= now < self.until

    def matches_device(self, device_index: int) -> bool:
        """Whether the clause applies to a given spindle."""
        return self.device < 0 or self.device == device_index


@dataclass(frozen=True)
class DiskErrorFault:
    """Fail disk requests transiently with probability ``rate``.

    A failed service attempt is retried by the device after an
    exponential backoff (``backoff * 2**attempt``); after
    ``max_retries`` failed attempts the request is forced through, so an
    error fault degrades throughput but never wedges the simulation.
    """

    rate: float = 0.05
    start: float = 0.0
    until: float = math.inf
    max_retries: int = 4
    backoff: float = 0.002
    #: Restrict the clause to one spindle of a striped array (-1 = all).
    device: int = -1
    #: Restrict the clause to one cluster replica (-1 = everywhere).
    replica: int = -1

    kind = "disk-error"

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise FaultSpecError(f"disk-error rate must be in [0, 1], got {self.rate}")
        if self.start < 0 or self.until < self.start:
            raise FaultSpecError(
                f"disk-error window must satisfy 0 <= from <= until, got "
                f"[{self.start}, {self.until}]"
            )
        if self.max_retries < 1:
            raise FaultSpecError(
                f"disk-error max_retries must be >= 1, got {self.max_retries}"
            )
        if self.backoff < 0:
            raise FaultSpecError(
                f"disk-error backoff must be >= 0, got {self.backoff}"
            )
        if self.device < -1:
            raise FaultSpecError(
                f"disk-error device must be >= 0 (or -1 for all), got {self.device}"
            )
        if self.replica < -1:
            raise FaultSpecError(
                f"disk-error replica must be >= 0 (or -1 for all), got {self.replica}"
            )

    def matches_replica(self, replica_index: int) -> bool:
        """Whether the clause applies to a given cluster replica."""
        return self.replica < 0 or self.replica == replica_index

    def active_at(self, now: float) -> bool:
        """Whether the window covers simulated time ``now``."""
        return self.start <= now < self.until

    def matches_device(self, device_index: int) -> bool:
        """Whether the clause applies to a given spindle."""
        return self.device < 0 or self.device == device_index


@dataclass(frozen=True)
class PoolPressureFault:
    """Reserve ``fraction`` of the bufferpool inside a time window.

    Models external memory pressure (another pool, a sort spill, an OS
    reclaim): the pool's effective capacity shrinks and scans must make
    do with the remainder.  The pool clamps the reservation so forward
    progress is always possible.
    """

    fraction: float = 0.5
    start: float = 0.0
    until: float = math.inf
    #: Restrict the clause to one cluster replica (-1 = everywhere).
    replica: int = -1

    kind = "pool-pressure"

    def __post_init__(self) -> None:
        if not 0.0 < self.fraction < 1.0:
            raise FaultSpecError(
                f"pool-pressure fraction must be in (0, 1), got {self.fraction}"
            )
        if self.start < 0 or self.until < self.start:
            raise FaultSpecError(
                f"pool-pressure window must satisfy 0 <= from <= until, got "
                f"[{self.start}, {self.until}]"
            )
        if self.replica < -1:
            raise FaultSpecError(
                f"pool-pressure replica must be >= 0 (or -1 for all), got {self.replica}"
            )

    def matches_replica(self, replica_index: int) -> bool:
        """Whether the clause applies to a given cluster replica."""
        return self.replica < 0 or self.replica == replica_index


Fault = Union[ScanKillFault, DiskDelayFault, DiskErrorFault, PoolPressureFault]

_FAULT_TYPES: Dict[str, type] = {
    cls.kind: cls
    for cls in (ScanKillFault, DiskDelayFault, DiskErrorFault, PoolPressureFault)
}

#: Option-name aliases: the spec grammar says ``from``/``until`` but the
#: dataclass field is ``start`` (``from`` is a Python keyword).
_OPTION_ALIASES = {"from": "start"}

#: Named plans the acceptance battery runs: one per failure family.
BUILTIN_PLANS: Dict[str, str] = {
    "leader-abort": "scan-kill:target=leader,at=0.4",
    "trailer-abort": "scan-kill:target=anchor,at=0.4",
    "disk-degrade": "disk-delay:factor=4.0,from=0.0",
    "disk-errors": "disk-error:rate=0.05,max_retries=4,backoff=0.002",
    "pool-pressure": "pool-pressure:fraction=0.5,from=0.0",
}


def _coerce(cls: type, name: str, raw: str):
    """Parse one option value to the fault field's annotated type."""
    for spec in fields(cls):
        if spec.name == name:
            if spec.type in ("int", int):
                try:
                    return int(raw)
                except ValueError:
                    raise FaultSpecError(
                        f"{cls.kind} option {name!r} needs an integer, got {raw!r}"
                    ) from None
            if spec.type in ("float", float):
                try:
                    return float(raw)
                except ValueError:
                    raise FaultSpecError(
                        f"{cls.kind} option {name!r} needs a number, got {raw!r}"
                    ) from None
            return raw
    known = ", ".join(sorted(f.name for f in fields(cls)))
    raise FaultSpecError(
        f"unknown option {name!r} for {cls.kind} (known: {known})"
    )


def _parse_clause(clause: str) -> Fault:
    head, _, tail = clause.partition(":")
    head = head.strip()
    if head in BUILTIN_PLANS and not tail:
        return _parse_clause(BUILTIN_PLANS[head])
    cls = _FAULT_TYPES.get(head)
    if cls is None:
        known = sorted(set(_FAULT_TYPES) | set(BUILTIN_PLANS))
        raise FaultSpecError(
            f"unknown fault kind {head!r} (known: {', '.join(known)})"
        )
    options = {}
    if tail:
        for token in tail.split(","):
            token = token.strip()
            if not token:
                continue
            name, sep, raw = token.partition("=")
            if not sep:
                raise FaultSpecError(
                    f"malformed option {token!r} in {clause!r} (expected key=value)"
                )
            name = _OPTION_ALIASES.get(name.strip(), name.strip())
            options[name] = _coerce(cls, name, raw.strip())
    return cls(**options)


def parse_fault_spec(spec: str) -> Tuple[Fault, ...]:
    """Parse a spec string into a tuple of fault clauses.

    Raises :class:`FaultSpecError` on an empty spec, an unknown fault
    kind or option, or an out-of-range value.
    """
    clauses = [clause.strip() for clause in spec.split(";") if clause.strip()]
    if not clauses:
        raise FaultSpecError("fault spec names no clauses")
    return tuple(_parse_clause(clause) for clause in clauses)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable fault schedule: parsed clauses plus the draw seed.

    Equality is over (spec, seed), so a plan can sit inside the frozen
    :class:`~repro.engine.database.SystemConfig` and participate in
    settings comparisons.
    """

    spec: str
    seed: int
    faults: Tuple[Fault, ...] = ()

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse ``spec`` and bind it to ``seed``."""
        return cls(spec=spec, seed=seed, faults=parse_fault_spec(spec))

    def for_replica(self, replica_index: int) -> "FaultPlan":
        """The sub-plan a given cluster replica should inject.

        Keeps only clauses whose ``replica`` pin matches (unpinned
        clauses match everywhere); spec and seed carry over unchanged,
        so the surviving clauses draw exactly as they would have in a
        single-node run.  May return a plan with no clauses — callers
        should skip injector construction entirely in that case.
        """
        return FaultPlan(
            spec=self.spec,
            seed=self.seed,
            faults=tuple(
                fault for fault in self.faults
                if fault.matches_replica(replica_index)
            ),
        )

    def describe(self) -> str:
        """One human-readable line per clause."""
        return "; ".join(
            f"{fault.kind}({', '.join(f'{f.name}={getattr(fault, f.name)}' for f in fields(fault))})"
            for fault in self.faults
        )
