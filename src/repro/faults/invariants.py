"""Runtime checker for the sharing stack's structural invariants.

The sharing mechanism rests on a handful of properties that must hold
whenever the manager is quiescent (i.e. right after a regroup) and that
no fault — a member dying, a disk degrading, the pool shrinking — may
break:

* **group membership** — every group member is a registered, unfinished
  scan; every registered scan belongs to at most one group; the
  ``group_id`` / ``is_leader`` / ``is_trailer`` flags stamped on states
  agree with the group structures.
* **group ordering** — members form a circular arc in scan direction:
  the forward distances trailer → … → leader sum to the trailer→leader
  distance and the arc fits inside the table circle.  (Checked only in
  *strict* mode: between regroups scans drift and the manager repairs
  ordering lazily via ``_order_violated``.)
* **throttle-anchor liveness** — the anchor a throttled leader would
  wait for is a registered, unfinished scan, never a ghost.
* **priority consistency** — the release priority each scan would get
  matches its group role (leader HIGH, trailer LOW in multi-member
  groups when prioritization is on).
* **accounting identity** — ``logical = hits + misses + inflight_waits``
  on the bufferpool, fault or no fault.

Violations raise :class:`InvariantViolation` so a chaos run fails loudly
instead of producing quietly-wrong metrics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.buffer.page import Priority
from repro.trace.events import InvariantChecked
from repro.trace.tracer import get_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.buffer.pool import BufferPool
    from repro.core.manager import ScanSharingManager


class InvariantViolation(AssertionError):
    """A sharing-stack invariant failed to hold."""


class InvariantChecker:
    """Validates manager/pool invariants; raises on the first violation."""

    def __init__(
        self,
        manager: "ScanSharingManager",
        pool: Optional["BufferPool"] = None,
    ):
        self.manager = manager
        self.pool = pool
        self.checks_run = 0

    def run_checks(self, strict_order: bool = False) -> None:
        """One full pass over all invariants.

        ``strict_order=True`` additionally validates the circular arc
        ordering of every group — only valid immediately after a
        regroup, before scans have drifted.
        """
        self._check_groups(strict_order)
        self._check_anchors()
        self._check_priorities()
        self._check_accounting()
        self.checks_run += 1
        tracer = get_tracer()
        if tracer.enabled:
            manager = self.manager
            tracer.emit(InvariantChecked(
                time=manager.sim.now,
                n_scans=len(manager._states),
                n_groups=len(manager._groups),
                strict_order=strict_order,
            ))

    # ------------------------------------------------------------------
    # Individual invariants
    # ------------------------------------------------------------------

    def _fail(self, message: str) -> None:
        raise InvariantViolation(
            f"t={self.manager.sim.now:.6f}: {message}"
        )

    def _check_groups(self, strict_order: bool) -> None:
        manager = self.manager
        states = manager._states
        seen_in_group = {}
        for group in manager._groups:
            if group.size == 0:
                self._fail(f"group {group.group_id} is empty")
            for index, member in enumerate(group.members):
                registered = states.get(member.scan_id)
                if registered is not member:
                    self._fail(
                        f"group {group.group_id} member scan {member.scan_id} "
                        f"is not a registered scan (dead member left in group)"
                    )
                if member.finished:
                    self._fail(
                        f"group {group.group_id} member scan {member.scan_id} "
                        f"is finished"
                    )
                if member.scan_id in seen_in_group:
                    self._fail(
                        f"scan {member.scan_id} appears in groups "
                        f"{seen_in_group[member.scan_id]} and {group.group_id}"
                    )
                seen_in_group[member.scan_id] = group.group_id
                if member.group_id != group.group_id:
                    self._fail(
                        f"scan {member.scan_id} carries group_id "
                        f"{member.group_id} but sits in group {group.group_id}"
                    )
                expect_leader = index == group.size - 1
                expect_trailer = index == 0
                if member.is_leader != expect_leader:
                    self._fail(
                        f"scan {member.scan_id} is_leader={member.is_leader} "
                        f"but holds position {index} of {group.size} in group "
                        f"{group.group_id}"
                    )
                if member.is_trailer != expect_trailer:
                    self._fail(
                        f"scan {member.scan_id} is_trailer={member.is_trailer} "
                        f"but holds position {index} of {group.size} in group "
                        f"{group.group_id}"
                    )
            if strict_order and group.size > 1:
                circle = group.table_pages
                if circle <= 0:
                    circle = manager.catalog.table(group.table_name).n_pages
                hops = sum(
                    group.members[i].forward_distance_to(
                        group.members[i + 1], circle
                    )
                    for i in range(group.size - 1)
                )
                span = group.trailer.forward_distance_to(group.leader, circle)
                if hops != span:
                    self._fail(
                        f"group {group.group_id} members are not arc-ordered: "
                        f"consecutive hops sum to {hops}, trailer→leader "
                        f"distance is {span}"
                    )
                if span >= circle:
                    self._fail(
                        f"group {group.group_id} arc spans {span} pages on a "
                        f"{circle}-page circle"
                    )
        group_ids = {group.group_id for group in manager._groups}
        for state in states.values():
            if state.group_id is not None and manager._groups:
                if state.group_id not in group_ids:
                    self._fail(
                        f"scan {state.scan_id} carries stale group_id "
                        f"{state.group_id} (no such group)"
                    )
                if state.scan_id not in seen_in_group:
                    self._fail(
                        f"scan {state.scan_id} carries group_id "
                        f"{state.group_id} but no group lists it"
                    )
            if state.group_id is None and (state.is_leader or state.is_trailer):
                self._fail(
                    f"ungrouped scan {state.scan_id} carries leader/trailer "
                    f"flags ({state.is_leader}/{state.is_trailer})"
                )

    def _check_anchors(self) -> None:
        manager = self.manager
        for group in manager._groups:
            if group.size <= 1:
                continue
            anchors = [
                member
                for member in group.members
                if member.scan_id != group.leader.scan_id
                and not member.finished
                and not member.throttle_exempt
            ]
            if not anchors:
                continue  # leader legitimately runs free
            anchor = anchors[0]
            registered = manager._states.get(anchor.scan_id)
            if registered is not anchor or anchor.finished:
                self._fail(
                    f"group {group.group_id} throttle anchor scan "
                    f"{anchor.scan_id} is dead or finished — the leader "
                    f"would wait forever"
                )

    def _check_priorities(self) -> None:
        # Derive the expected priority from the group *structure* (member
        # positions), not from the stamped flags page_priority itself
        # reads — so a stale flag shows up as a mismatch.
        manager = self.manager
        config = manager.config
        adaptive = (
            config.enabled
            and config.prioritization_enabled
            and config.grouping_enabled
        )
        for state in manager._states.values():
            group = manager._group_of(state)
            expected = Priority.NORMAL
            if adaptive and group is not None and group.size > 1:
                if state.scan_id == group.leader.scan_id:
                    expected = Priority.HIGH
                elif state.scan_id == group.trailer.scan_id:
                    expected = Priority.LOW
            actual = manager.page_priority(state.scan_id)
            if actual != expected:
                self._fail(
                    f"scan {state.scan_id} releases at priority {actual!r} "
                    f"but its group role implies {expected!r}"
                )

    def _check_accounting(self) -> None:
        if self.pool is None:
            return
        stats = self.pool.stats
        classified = stats.hits + stats.misses + stats.inflight_waits
        if stats.logical_reads != classified:
            self._fail(
                f"bufferpool accounting identity broken: logical_reads="
                f"{stats.logical_reads} but hits+misses+inflight_waits="
                f"{classified} ({stats.hits}+{stats.misses}+"
                f"{stats.inflight_waits})"
            )
