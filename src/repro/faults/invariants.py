"""Runtime checker for the sharing stack's structural invariants.

The sharing mechanism rests on a handful of properties that must hold
whenever the manager is quiescent (i.e. right after a regroup) and that
no fault — a member dying, a disk degrading, the pool shrinking — may
break:

* **group membership** — every group member is a registered, unfinished
  scan; every registered scan belongs to at most one group; the
  ``group_id`` / ``is_leader`` / ``is_trailer`` flags stamped on states
  agree with the group structures.
* **group ordering** — members form a circular arc in scan direction:
  the forward distances trailer → … → leader sum to the trailer→leader
  distance and the arc fits inside the table circle.  (Checked only in
  *strict* mode: between regroups scans drift and the manager repairs
  ordering lazily via ``_order_violated``.)
* **throttle-anchor liveness** — the anchor a throttled leader would
  wait for is a registered, unfinished scan, never a ghost.
* **priority consistency** — the release priority each scan would get
  matches its group role (leader HIGH, trailer LOW in multi-member
  groups when prioritization is on).
* **accounting identity** — ``logical = hits + misses + inflight_waits``
  on the bufferpool, fault or no fault.

The group/anchor/priority invariants above are specific to the
``grouping-throttling`` policy.  The rival policies carry their own
structural invariants instead:

* ``cooperative`` — every live attach edge connects two registered
  scans (no ghost attach targets after an abort), and every release
  priority is NORMAL (cooperative scans do not steer the pool);
* ``pbm`` — the reuse-time map holds exactly the registered, unfinished
  scans (a departed scan's predictions must not linger), and every
  release priority is NORMAL.

When the push prefetch pipeline is enabled two more properties hold
under every policy:

* **consumer-set liveness** — every scan registered as a consumer of a
  pushed extent (pending or delivered) is a registered scan; no
  consumer set survives ``abort_scan``;
* **at-most-once delivery** — within one push generation, no consumer
  receives an extent twice (``duplicate_deliveries`` stays 0).

The accounting identity holds under every policy.  Violations raise
:class:`InvariantViolation` so a chaos run fails loudly instead of
producing quietly-wrong metrics.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.buffer.page import Priority
from repro.trace.events import InvariantChecked
from repro.trace.tracer import get_tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.buffer.pool import BufferPool
    from repro.core.policy import SharingPolicy


class InvariantViolation(AssertionError):
    """A sharing-stack invariant failed to hold."""


class InvariantChecker:
    """Validates manager/pool invariants; raises on the first violation.

    The check set is selected by the manager's ``policy_name``, so the
    same checker (and the same fault-injector hook) guards every
    :class:`~repro.core.policy.SharingPolicy` implementation.
    """

    def __init__(
        self,
        manager: "SharingPolicy",
        pool: Optional["BufferPool"] = None,
    ):
        self.manager = manager
        self.pool = pool
        self.checks_run = 0

    def run_checks(self, strict_order: bool = False) -> None:
        """One full pass over the active policy's invariants.

        ``strict_order=True`` additionally validates the circular arc
        ordering of every group (grouping-throttling only) — only valid
        immediately after a regroup, before scans have drifted.
        """
        policy = getattr(self.manager, "policy_name", "grouping-throttling")
        if policy == "cooperative":
            self._check_attach_edges()
            self._check_flat_priorities()
        elif policy == "pbm":
            self._check_reuse_sources()
            self._check_flat_priorities()
        else:
            self._check_groups(strict_order)
            self._check_anchors()
            self._check_priorities()
        self._check_push()
        self._check_accounting()
        self.checks_run += 1
        tracer = get_tracer()
        if tracer.enabled:
            manager = self.manager
            tracer.emit(InvariantChecked(
                time=manager.sim.now,
                n_scans=len(manager._states),
                n_groups=len(getattr(manager, "_groups", ())),
                strict_order=strict_order,
            ))

    # ------------------------------------------------------------------
    # Individual invariants
    # ------------------------------------------------------------------

    def _fail(self, message: str) -> None:
        raise InvariantViolation(
            f"t={self.manager.sim.now:.6f}: {message}"
        )

    def _check_groups(self, strict_order: bool) -> None:
        manager = self.manager
        states = manager._states
        seen_in_group = {}
        for group in manager._groups:
            if group.size == 0:
                self._fail(f"group {group.group_id} is empty")
            for index, member in enumerate(group.members):
                registered = states.get(member.scan_id)
                if registered is not member:
                    self._fail(
                        f"group {group.group_id} member scan {member.scan_id} "
                        f"is not a registered scan (dead member left in group)"
                    )
                if member.finished:
                    self._fail(
                        f"group {group.group_id} member scan {member.scan_id} "
                        f"is finished"
                    )
                if member.scan_id in seen_in_group:
                    self._fail(
                        f"scan {member.scan_id} appears in groups "
                        f"{seen_in_group[member.scan_id]} and {group.group_id}"
                    )
                seen_in_group[member.scan_id] = group.group_id
                if member.group_id != group.group_id:
                    self._fail(
                        f"scan {member.scan_id} carries group_id "
                        f"{member.group_id} but sits in group {group.group_id}"
                    )
                expect_leader = index == group.size - 1
                expect_trailer = index == 0
                if member.is_leader != expect_leader:
                    self._fail(
                        f"scan {member.scan_id} is_leader={member.is_leader} "
                        f"but holds position {index} of {group.size} in group "
                        f"{group.group_id}"
                    )
                if member.is_trailer != expect_trailer:
                    self._fail(
                        f"scan {member.scan_id} is_trailer={member.is_trailer} "
                        f"but holds position {index} of {group.size} in group "
                        f"{group.group_id}"
                    )
            if strict_order and group.size > 1:
                circle = group.table_pages
                if circle <= 0:
                    circle = manager.catalog.table(group.table_name).n_pages
                hops = sum(
                    group.members[i].forward_distance_to(
                        group.members[i + 1], circle
                    )
                    for i in range(group.size - 1)
                )
                span = group.trailer.forward_distance_to(group.leader, circle)
                if hops != span:
                    self._fail(
                        f"group {group.group_id} members are not arc-ordered: "
                        f"consecutive hops sum to {hops}, trailer→leader "
                        f"distance is {span}"
                    )
                if span >= circle:
                    self._fail(
                        f"group {group.group_id} arc spans {span} pages on a "
                        f"{circle}-page circle"
                    )
        group_ids = {group.group_id for group in manager._groups}
        for state in states.values():
            if state.group_id is not None and manager._groups:
                if state.group_id not in group_ids:
                    self._fail(
                        f"scan {state.scan_id} carries stale group_id "
                        f"{state.group_id} (no such group)"
                    )
                if state.scan_id not in seen_in_group:
                    self._fail(
                        f"scan {state.scan_id} carries group_id "
                        f"{state.group_id} but no group lists it"
                    )
            if state.group_id is None and (state.is_leader or state.is_trailer):
                self._fail(
                    f"ungrouped scan {state.scan_id} carries leader/trailer "
                    f"flags ({state.is_leader}/{state.is_trailer})"
                )

    def _check_anchors(self) -> None:
        manager = self.manager
        for group in manager._groups:
            if group.size <= 1:
                continue
            anchors = [
                member
                for member in group.members
                if member.scan_id != group.leader.scan_id
                and not member.finished
                and not member.throttle_exempt
            ]
            if not anchors:
                continue  # leader legitimately runs free
            anchor = anchors[0]
            registered = manager._states.get(anchor.scan_id)
            if registered is not anchor or anchor.finished:
                self._fail(
                    f"group {group.group_id} throttle anchor scan "
                    f"{anchor.scan_id} is dead or finished — the leader "
                    f"would wait forever"
                )

    def _check_priorities(self) -> None:
        # Derive the expected priority from the group *structure* (member
        # positions), not from the stamped flags page_priority itself
        # reads — so a stale flag shows up as a mismatch.
        manager = self.manager
        config = manager.config
        adaptive = (
            config.enabled
            and config.prioritization_enabled
            and config.grouping_enabled
        )
        for state in manager._states.values():
            group = manager._group_of(state)
            expected = Priority.NORMAL
            if adaptive and group is not None and group.size > 1:
                if state.scan_id == group.leader.scan_id:
                    expected = Priority.HIGH
                elif state.scan_id == group.trailer.scan_id:
                    expected = Priority.LOW
            actual = manager.page_priority(state.scan_id)
            if actual != expected:
                self._fail(
                    f"scan {state.scan_id} releases at priority {actual!r} "
                    f"but its group role implies {expected!r}"
                )

    def _check_attach_edges(self) -> None:
        """Cooperative: live attach edges connect registered scans only."""
        manager = self.manager
        states = manager._states
        for follower, target in manager.attach_edges().items():
            if follower not in states:
                self._fail(
                    f"attach edge from unregistered scan {follower} "
                    f"(to {target}) survived its owner's departure"
                )
            if target not in states:
                self._fail(
                    f"scan {follower} still attached to departed scan "
                    f"{target} (ghost attach target)"
                )

    def _check_reuse_sources(self) -> None:
        """PBM: the reuse-time map mirrors the registered scans exactly."""
        manager = self.manager
        states = manager._states
        listed = set()
        for space_id, scans in manager.reuse_sources().items():
            if not scans:
                self._fail(f"reuse-time map keeps empty space {space_id}")
            for scan_id, state in scans.items():
                registered = states.get(scan_id)
                if registered is not state:
                    self._fail(
                        f"reuse-time map lists scan {scan_id} on space "
                        f"{space_id} but it is not a registered scan "
                        f"(stale prediction source)"
                    )
                if state.finished:
                    self._fail(
                        f"reuse-time map lists finished scan {scan_id} "
                        f"on space {space_id}"
                    )
                listed.add(scan_id)
        for scan_id in states:
            if scan_id not in listed:
                self._fail(
                    f"registered scan {scan_id} is missing from the "
                    f"reuse-time map (its pages would all predict inf)"
                )

    def _check_flat_priorities(self) -> None:
        """Non-steering policies: every release priority is NORMAL."""
        manager = self.manager
        for scan_id in manager._states:
            actual = manager.page_priority(scan_id)
            if actual != Priority.NORMAL:
                self._fail(
                    f"scan {scan_id} releases at priority {actual!r} under "
                    f"{manager.policy_name}, which never steers the pool"
                )

    def _check_push(self) -> None:
        """Push pipeline: live consumer sets, at-most-once delivery."""
        pipeline = getattr(self.manager, "push_pipeline", None)
        if pipeline is None:
            return
        states = self.manager._states
        for key, consumers in pipeline.consumer_sets().items():
            for scan_id in sorted(consumers):
                if scan_id not in states:
                    self._fail(
                        f"push consumer set for extent {key} still lists "
                        f"scan {scan_id}, which is no longer registered "
                        f"(consumer set survived the scan's departure)"
                    )
        for key, delivered in pipeline.delivery_counts().items():
            for scan_id, count in sorted(delivered.items()):
                if scan_id not in states:
                    self._fail(
                        f"push delivery log for extent {key} still lists "
                        f"departed scan {scan_id}"
                    )
                if count > 1:
                    self._fail(
                        f"extent {key} was delivered {count} times to scan "
                        f"{scan_id} within one push generation"
                    )
        if pipeline.stats.duplicate_deliveries:
            self._fail(
                f"push pipeline recorded "
                f"{pipeline.stats.duplicate_deliveries} duplicate deliveries "
                f"(at-most-once per consumer per generation violated)"
            )

    def _check_accounting(self) -> None:
        if self.pool is None:
            return
        stats = self.pool.stats
        classified = stats.hits + stats.misses + stats.inflight_waits
        if stats.logical_reads != classified:
            self._fail(
                f"bufferpool accounting identity broken: logical_reads="
                f"{stats.logical_reads} but hits+misses+inflight_waits="
                f"{classified} ({stats.hits}+{stats.misses}+"
                f"{stats.inflight_waits})"
            )
