"""Parallel experiment runner with deterministic seeding and caching.

The paper's evidence is a battery of experiments (E1–E9) plus ablation
sweeps; running every mode serially in one process takes tens of
minutes at full fidelity.  This module industrializes that battery:

* **Fan-out** — tasks run across a :class:`~concurrent.futures.\
ProcessPoolExecutor`; ``jobs=1`` runs inline through the *same* task
  function, so parallel and serial execution are byte-identical.
* **Deterministic seeding** — every task's seed is derived as
  SHA-256(experiment id, sweep point, base seed), so results do not
  depend on scheduling order, worker identity, or ``PYTHONHASHSEED``.
* **Result cache** — finished tasks are stored on disk under a content
  address: a digest of the experiment id, sweep point, settings, and a
  fingerprint of the package's own source code.  Re-running a suite
  after an unrelated edit is near-instant; any code or settings change
  invalidates exactly the affected entries.
* **Consolidated artifact** — :class:`SuiteResult` serializes to one
  ``results.json`` with per-experiment metrics, timings, and cache
  provenance (see :func:`repro.metrics.export.suite_to_dict`).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import asdict, dataclass, field, fields
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.experiments.harness import ExperimentSettings
from repro.experiments.registry import all_experiments, get, metrics_of, render_result

#: Default on-disk cache location; override per-call or with REPRO_CACHE_DIR.
DEFAULT_CACHE_DIR = ".repro-cache"

_SEP = b"\x1f"  # unit separator between length-prefixed components


# ----------------------------------------------------------------------
# Deterministic seed derivation
# ----------------------------------------------------------------------


def derive_seed(experiment: str, sweep_point: str, base_seed: int) -> int:
    """A per-task seed that is stable across processes and platforms.

    Built from SHA-256 rather than :func:`hash` so the value does not
    depend on ``PYTHONHASHSEED``; distinct (experiment, sweep point)
    pairs get decorrelated workloads while the same pair always replays
    the same workload for a given base seed.  Components are
    length-prefixed so no concatenation of two different pairs can
    produce the same payload.
    """
    exp = experiment.encode("utf-8")
    point = sweep_point.encode("utf-8")
    payload = b"%d:%s%s%d:%s%s%d" % (
        len(exp), exp, _SEP, len(point), point, _SEP, int(base_seed),
    )
    digest = hashlib.sha256(payload).digest()
    return int.from_bytes(digest[:8], "big") % (2 ** 63)


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------


def code_fingerprint() -> str:
    """A digest of every ``.py`` file in the installed ``repro`` package.

    Part of the cache key: editing any source file invalidates cached
    results, so a cache hit always means "this exact code already
    produced this exact configuration's numbers".
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
        _FINGERPRINT = digest.hexdigest()[:16]
    return _FINGERPRINT


_FINGERPRINT: Optional[str] = None


def settings_to_dict(settings: ExperimentSettings) -> Dict[str, Any]:
    """A JSON-safe dict of one settings object (tuples become lists)."""
    raw = asdict(settings)
    if raw.get("query_names") is not None:
        raw["query_names"] = list(raw["query_names"])
    if raw.get("sharing_overrides") is not None:
        raw["sharing_overrides"] = [
            list(pair) for pair in raw["sharing_overrides"]
        ]
    return raw


def canonical_json(value: Any) -> str:
    """The one serialization used for digests: sorted keys, no spaces."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def metrics_digest(metrics: Dict[str, Any]) -> str:
    """Digest of one task's metrics dict (the determinism invariant)."""
    return hashlib.sha256(canonical_json(metrics).encode("utf-8")).hexdigest()


def cache_key(experiment: str, sweep_point: str,
              settings: ExperimentSettings) -> str:
    """Content address of one task: experiment + settings + code."""
    payload = canonical_json({
        "experiment": experiment,
        "sweep_point": sweep_point,
        "settings": settings_to_dict(settings),
        "code": code_fingerprint(),
    })
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def first_divergence(a: Any, b: Any, path: str = "$") -> Optional[str]:
    """The path of the first field where two metric trees differ.

    Returns ``None`` when the trees are identical; used by the
    determinism regression test to name the culprit field instead of
    dumping two full JSON blobs.
    """
    if type(a) is not type(b):
        return f"{path}: type {type(a).__name__} != {type(b).__name__}"
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                return f"{path}.{key}: missing on left"
            if key not in b:
                return f"{path}.{key}: missing on right"
            found = first_divergence(a[key], b[key], f"{path}.{key}")
            if found:
                return found
        return None
    if isinstance(a, (list, tuple)):
        if len(a) != len(b):
            return f"{path}: length {len(a)} != {len(b)}"
        for index, (left, right) in enumerate(zip(a, b)):
            found = first_divergence(left, right, f"{path}[{index}]")
            if found:
                return found
        return None
    if a != b:
        return f"{path}: {a!r} != {b!r}"
    return None


# ----------------------------------------------------------------------
# Tasks
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentTask:
    """One unit of work: an experiment at one settings/sweep point."""

    experiment: str
    settings: ExperimentSettings
    sweep_point: str = ""

    @property
    def label(self) -> str:
        if self.sweep_point:
            return f"{self.experiment}[{self.sweep_point}]"
        return self.experiment

    @property
    def derived_seed(self) -> int:
        return derive_seed(self.experiment, self.sweep_point,
                           self.settings.seed)


@dataclass
class TaskResult:
    """One finished task: metrics plus provenance."""

    experiment: str
    sweep_point: str
    seed: int
    metrics: Dict[str, Any]
    render: str
    elapsed_seconds: float
    cache: str  # "hit" | "miss" | "off"
    digest: str = ""

    def __post_init__(self) -> None:
        if not self.digest:
            self.digest = metrics_digest(self.metrics)

    @property
    def label(self) -> str:
        if self.sweep_point:
            return f"{self.experiment}[{self.sweep_point}]"
        return self.experiment


def execute_task(task: ExperimentTask) -> TaskResult:
    """Run one task from scratch (no cache) with its derived seed.

    This is the only code path that produces numbers — serial runs,
    pool workers, and cache misses all come through here, which is what
    makes ``--jobs N`` byte-identical to ``--jobs 1``.
    """
    seed = task.derived_seed
    settings = task.settings.with_(seed=seed)
    spec = get(task.experiment)
    start = time.perf_counter()
    result = spec.execute(settings)
    elapsed = time.perf_counter() - start
    return TaskResult(
        experiment=task.experiment,
        sweep_point=task.sweep_point,
        seed=seed,
        metrics=metrics_of(result),
        render=render_result(result),
        elapsed_seconds=elapsed,
        cache="off",
    )


# ----------------------------------------------------------------------
# On-disk result cache
# ----------------------------------------------------------------------


class ResultCache:
    """Content-addressed store of finished :class:`TaskResult` payloads.

    One JSON file per key under ``directory``; corrupt or unreadable
    entries are treated as misses, never as errors.
    """

    def __init__(self, directory: Optional[str] = None):
        self.directory = Path(
            directory
            or os.environ.get("REPRO_CACHE_DIR")
            or DEFAULT_CACHE_DIR
        )

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, key: str) -> Optional[TaskResult]:
        path = self._path(key)
        try:
            payload = json.loads(path.read_text())
            return TaskResult(
                experiment=payload["experiment"],
                sweep_point=payload["sweep_point"],
                seed=payload["seed"],
                metrics=payload["metrics"],
                render=payload["render"],
                elapsed_seconds=payload["elapsed_seconds"],
                cache="hit",
                digest=payload["digest"],
            )
        except (OSError, ValueError, KeyError):
            return None

    def put(self, key: str, result: TaskResult) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        payload = {
            "experiment": result.experiment,
            "sweep_point": result.sweep_point,
            "seed": result.seed,
            "metrics": result.metrics,
            "render": result.render,
            "elapsed_seconds": result.elapsed_seconds,
            "digest": result.digest,
            "code_fingerprint": code_fingerprint(),
            "created_at": time.time(),
        }
        tmp = self._path(key).with_suffix(".tmp")
        tmp.write_text(json.dumps(payload, sort_keys=True, indent=1))
        tmp.replace(self._path(key))


# ----------------------------------------------------------------------
# Suite execution
# ----------------------------------------------------------------------


@dataclass
class SuiteResult:
    """Everything one ``run-all``/``sweep`` invocation produced."""

    base_seed: int
    code_fingerprint: str
    tasks: List[TaskResult] = field(default_factory=list)
    wall_seconds: float = 0.0
    jobs: int = 1

    @property
    def cache_hits(self) -> int:
        return sum(1 for task in self.tasks if task.cache == "hit")

    @property
    def metrics_by_label(self) -> Dict[str, Dict[str, Any]]:
        return {task.label: task.metrics for task in self.tasks}

    def suite_digest(self) -> str:
        """One digest over every task's metrics, in task order."""
        return metrics_digest({
            task.label: task.digest for task in self.tasks
        })


def run_tasks(
    tasks: Sequence[ExperimentTask],
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
) -> SuiteResult:
    """Run tasks (cache-first), fanning misses out over ``jobs`` workers.

    Results come back in task order regardless of completion order, so
    artifacts diff cleanly between runs.
    """
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    start = time.perf_counter()
    cache = ResultCache(cache_dir) if use_cache else None
    slots: List[Optional[TaskResult]] = [None] * len(tasks)
    # Each key digests the settings plus the full source fingerprint —
    # compute it once per task, not once for the probe and again for the
    # store.
    keys = [cache_key(task.experiment, task.sweep_point, task.settings)
            for task in tasks] if cache else []
    misses: List[Tuple[int, ExperimentTask]] = []
    for index, task in enumerate(tasks):
        cached = cache.get(keys[index]) if cache else None
        if cached is not None:
            slots[index] = cached
        else:
            misses.append((index, task))

    if misses:
        if jobs == 1 or len(misses) == 1:
            fresh = [execute_task(task) for _index, task in misses]
        else:
            with ProcessPoolExecutor(max_workers=min(jobs, len(misses))) as pool:
                fresh = list(pool.map(execute_task,
                                      [task for _index, task in misses]))
        for (index, task), result in zip(misses, fresh):
            result.cache = "miss" if cache else "off"
            slots[index] = result
            if cache:
                cache.put(keys[index], result)

    base_seed = tasks[0].settings.seed if tasks else 0
    return SuiteResult(
        base_seed=base_seed,
        code_fingerprint=code_fingerprint(),
        tasks=[slot for slot in slots if slot is not None],
        wall_seconds=time.perf_counter() - start,
        jobs=jobs,
    )


def run_suite(
    settings: ExperimentSettings,
    experiments: Optional[Sequence[str]] = None,
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
) -> SuiteResult:
    """Run a set of experiments (default: all registered) in parallel."""
    names = list(experiments) if experiments else [
        spec.name for spec in all_experiments()
    ]
    tasks = [ExperimentTask(experiment=get(name).name, settings=settings)
             for name in names]
    return run_tasks(tasks, jobs=jobs, use_cache=use_cache,
                     cache_dir=cache_dir)


def coerce_sweep_value(settings: ExperimentSettings, param: str,
                       raw: str) -> Any:
    """Parse one ``--values`` token to the sweep parameter's type."""
    valid = {f.name for f in fields(ExperimentSettings)}
    if param not in valid:
        raise ValueError(
            f"unknown sweep parameter {param!r} "
            f"(known: {', '.join(sorted(valid))})"
        )
    current = getattr(settings, param)
    if isinstance(current, bool):
        return raw.lower() in ("1", "true", "yes", "on")
    if isinstance(current, int):
        return int(raw)
    if isinstance(current, float):
        return float(raw)
    if current is None:  # pool_pages / query_names default to None
        try:
            return int(raw)
        except ValueError:
            return raw
    return raw


def run_sweep(
    experiment: str,
    param: str,
    values: Sequence[Any],
    settings: ExperimentSettings,
    jobs: int = 1,
    use_cache: bool = True,
    cache_dir: Optional[str] = None,
) -> SuiteResult:
    """Run one experiment across a grid of one settings parameter.

    Each grid point gets its own derived seed (so points are
    decorrelated) and its own cache entry.
    """
    spec = get(experiment)
    tasks = []
    for value in values:
        coerced = coerce_sweep_value(settings, param, str(value))
        tasks.append(ExperimentTask(
            experiment=spec.name,
            settings=settings.with_(**{param: coerced}),
            sweep_point=f"{param}={coerced}",
        ))
    return run_tasks(tasks, jobs=jobs, use_cache=use_cache,
                     cache_dir=cache_dir)
