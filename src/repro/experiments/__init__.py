"""Experiment harness: one function per paper table/figure.

Each experiment builds matched "Base" (vanilla) and "SS" (scan sharing)
database instances, runs the same workload on both, and returns a typed
result object whose ``render()`` reproduces the corresponding table or
figure as text.  EXPERIMENTS.md records paper-vs-measured for each.
"""

from repro.experiments.harness import (
    Comparison,
    ExperimentSettings,
    ModeResult,
    compare_modes,
    run_mode,
)
from repro.experiments.policies import (
    PolicyComparisonResult,
    PolicyMixResult,
    pl_head2head,
    pl_mix,
)
from repro.experiments.registry import (
    REGISTRY,
    ExperimentSpec,
    UnknownExperimentError,
    all_experiments,
    metrics_of,
    render_result,
)
from repro.experiments.runner import (
    ExperimentTask,
    ResultCache,
    SuiteResult,
    TaskResult,
    derive_seed,
    execute_task,
    run_suite,
    run_sweep,
)
from repro.experiments.experiments import (
    ablation_bufferpool_sweep,
    ablation_disk_array,
    ablation_disk_scheduler,
    ablation_fairness_cap,
    ablation_policies,
    ablation_priority,
    ablation_threshold,
    ablation_throttling,
    e1_overhead,
    e2_staggered_q6,
    e3_staggered_q1,
    e4_throughput,
    e5_reads_timeline,
    e6_seeks_timeline,
    e7_per_stream,
    e8_per_query,
    e9_stream_scaling,
)

__all__ = [
    "Comparison",
    "ExperimentSettings",
    "ExperimentSpec",
    "ExperimentTask",
    "ModeResult",
    "PolicyComparisonResult",
    "PolicyMixResult",
    "REGISTRY",
    "ResultCache",
    "SuiteResult",
    "TaskResult",
    "UnknownExperimentError",
    "all_experiments",
    "derive_seed",
    "execute_task",
    "metrics_of",
    "render_result",
    "run_suite",
    "run_sweep",
    "ablation_bufferpool_sweep",
    "ablation_disk_array",
    "ablation_disk_scheduler",
    "ablation_fairness_cap",
    "ablation_policies",
    "ablation_priority",
    "ablation_threshold",
    "ablation_throttling",
    "pl_head2head",
    "pl_mix",
    "compare_modes",
    "e1_overhead",
    "e2_staggered_q6",
    "e3_staggered_q1",
    "e4_throughput",
    "e5_reads_timeline",
    "e6_seeks_timeline",
    "e7_per_stream",
    "e8_per_query",
    "e9_stream_scaling",
    "run_mode",
]
