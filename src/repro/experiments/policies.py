"""Head-to-head experiments over the sharing-policy axis (``pl-*``).

Two experiments compare the paper's grouping+throttling mechanism with
its rivals (cooperative attach, predictive buffer management) on the
same TPC-H stream mix:

* ``pl-mix`` runs the mix once under ``settings.sharing_policy`` — the
  unit of a ``repro sweep --param sharing_policy`` grid, whose CLI
  output aggregates the grid points into one comparison table;
* ``pl-head2head`` runs Base (sharing off) plus all three policies
  inside one experiment, so every row shares one derived seed and the
  gain columns are apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.config import SharingConfig
from repro.core.policy import SHARING_POLICY_NAMES
from repro.experiments.harness import ExperimentSettings, ModeResult, run_mode
from repro.metrics.report import format_policy_table, percent_gain

__all__ = [
    "PolicyComparisonResult",
    "PolicyMixResult",
    "PolicyRunResult",
    "pl_head2head",
    "pl_mix",
]


@dataclass(frozen=True)
class PolicyRunResult:
    """Headline numbers of one workload run under one sharing policy."""

    policy: str
    makespan: float
    pages_read: int
    seeks: int
    hit_percent: float
    throttle_waits: int
    scans_joined: int
    throttle_seconds: float

    def metrics(self) -> Dict[str, Any]:
        return {
            "policy": self.policy,
            "makespan": self.makespan,
            "pages_read": self.pages_read,
            "seeks": self.seeks,
            "hit_percent": self.hit_percent,
            "throttle_waits": self.throttle_waits,
            "scans_joined": self.scans_joined,
            "throttle_seconds": self.throttle_seconds,
        }

    def row(self, base: Optional["PolicyRunResult"] = None) -> Dict[str, Any]:
        """A table row, with gain columns when a baseline is given."""
        cells = self.metrics()
        if base is not None:
            cells["end_to_end_gain_percent"] = percent_gain(
                base.makespan, self.makespan
            )
            cells["disk_read_gain_percent"] = percent_gain(
                float(base.pages_read), float(self.pages_read)
            )
        return cells


def _policy_run(policy: str, mode: ModeResult) -> PolicyRunResult:
    return PolicyRunResult(
        policy=policy,
        makespan=mode.makespan,
        pages_read=mode.pages_read,
        seeks=mode.seeks,
        hit_percent=100.0 * mode.workload.buffer_hit_ratio,
        throttle_waits=mode.throttle_waits,
        scans_joined=mode.scans_joined,
        throttle_seconds=mode.workload.throttle_seconds,
    )


@dataclass
class PolicyMixResult:
    """``pl-mix``: the TPC-H stream mix under one sharing policy."""

    run: PolicyRunResult

    def metrics(self) -> Dict[str, Any]:
        return self.run.metrics()

    def render(self) -> str:
        return format_policy_table([self.run.row()])


@dataclass
class PolicyComparisonResult:
    """``pl-head2head``: Base plus every sharing policy, one seed."""

    base: PolicyRunResult
    runs: List[PolicyRunResult]

    def metrics(self) -> Dict[str, Any]:
        return {
            "base": self.base.metrics(),
            "policies": {run.policy: run.row(self.base) for run in self.runs},
        }

    def render(self) -> str:
        rows = [self.base.row()]
        rows.extend(run.row(self.base) for run in self.runs)
        return format_policy_table(rows)


def pl_mix(settings: Optional[ExperimentSettings] = None) -> PolicyMixResult:
    """PL-MIX: the stream mix under ``settings.sharing_policy`` alone."""
    settings = settings or ExperimentSettings()
    mode = run_mode(settings, SharingConfig(), settings.sharing_policy)
    return PolicyMixResult(run=_policy_run(settings.sharing_policy, mode))


def pl_head2head(
    settings: Optional[ExperimentSettings] = None,
) -> PolicyComparisonResult:
    """PL-HEAD2HEAD: Base vs all three policies on one workload."""
    settings = settings or ExperimentSettings()
    base = _policy_run(
        "base", run_mode(settings, SharingConfig(enabled=False), "base")
    )
    runs = [
        _policy_run(
            name,
            run_mode(
                settings.with_(sharing_policy=name), SharingConfig(), name
            ),
        )
        for name in SHARING_POLICY_NAMES
    ]
    return PolicyComparisonResult(base=base, runs=runs)
