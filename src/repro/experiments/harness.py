"""Common machinery for running Base-vs-SS comparisons."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.config import SharingConfig
from repro.engine.database import Database, SystemConfig
from repro.faults.plan import FaultPlan
from repro.engine.executor import WorkloadResult, run_workload
from repro.engine.query import QuerySpec
from repro.metrics.cpu import CpuBreakdown
from repro.metrics.report import percent_gain
from repro.workloads.streams import tpch_streams
from repro.workloads.tpch_schema import make_tpch_database


@dataclass(frozen=True)
class ExperimentSettings:
    """Knobs shared by all experiments.

    ``scale`` trades fidelity for runtime: 1.0 is the headline
    configuration (lineitem 1600 pages, pool ≈ 5 %); benchmarks default
    lower so the whole suite finishes in minutes.
    """

    scale: float = 0.35
    n_streams: int = 5
    seed: int = 42
    query_names: Optional[Sequence[str]] = None
    stagger: float = 0.0
    n_cpus: int = 4
    policy: str = "priority-lru"
    #: Scan-sharing strategy for the shared mode (see
    #: :data:`repro.core.policy.SHARING_POLICY_NAMES`); part of every
    #: cache key, and sweepable via ``repro sweep --param sharing_policy``.
    sharing_policy: str = "grouping-throttling"
    disk_scheduler: str = "fifo"
    #: Striped spindles backing the tablespace (1 = the single-disk
    #: model).  Part of every cache key and sweepable via
    #: ``repro sweep --param device_count``.
    device_count: int = 1
    #: Stripe unit in prefetch extents (None keeps the page-granular
    #: default of SystemConfig.disk_stripe_pages).
    stripe_extents: Optional[int] = None
    #: Leader-driven push prefetch pipeline (see
    #: :mod:`repro.buffer.push`); off = classic pull.
    push_prefetch: bool = False
    pool_fraction: float = 0.05
    #: Explicit pool size in pages; overrides pool_fraction (and the
    #: config's minimum-pool floor) when set.
    pool_pages: Optional[int] = None
    #: SharingConfig field overrides applied to the *shared* mode, as a
    #: sorted tuple of (field, value) pairs so the settings object stays
    #: hashable and cache keys see every override.
    sharing_overrides: Optional[Tuple[Tuple[str, Any], ...]] = None
    #: Spill strategy for memory-budgeted aggregation steps (see
    #: :data:`repro.engine.spill.AGG_STRATEGIES`): ``hash`` or ``sort``.
    #: Only the ``ag-*``/``mj-*`` experiments have budgeted steps; the
    #: classic templates ignore it.  Part of every cache key and
    #: sweepable via ``repro sweep --param agg_strategy``.
    agg_strategy: str = "hash"
    #: Fault spec string (see :mod:`repro.faults.plan`); None = clean run.
    fault_spec: Optional[str] = None
    #: Arrival-window override for ``sv-*`` service scenarios, in
    #: simulated seconds; None = the scenario's own scale-derived default.
    #: Ignored by every non-service experiment.
    service_horizon: Optional[float] = None
    #: Replica-fleet override for ``sv-cluster-*`` scenarios; None = the
    #: scenario's own default.  Ignored by every non-cluster experiment.
    cluster_replicas: Optional[int] = None
    #: Simulated-user-population override for ``sv-cluster-*`` scenarios;
    #: None = the scenario's own default.  Ignored elsewhere.
    cluster_users: Optional[int] = None

    def with_(self, **changes) -> "ExperimentSettings":
        """A modified copy."""
        if "sharing_overrides" in changes and changes["sharing_overrides"]:
            overrides = changes["sharing_overrides"]
            if isinstance(overrides, dict):
                overrides = tuple(sorted(overrides.items()))
            else:
                overrides = tuple(sorted(tuple(pair) for pair in overrides))
            changes = {**changes, "sharing_overrides": overrides}
        return replace(self, **changes)

    def fault_plan(self) -> Optional[FaultPlan]:
        """The parsed fault plan these settings describe, if any."""
        if self.fault_spec is None:
            return None
        return FaultPlan.from_spec(self.fault_spec, seed=self.seed)

    def apply_sharing_overrides(self, sharing: SharingConfig) -> SharingConfig:
        """``sharing`` with this settings object's overrides applied."""
        if not self.sharing_overrides:
            return sharing
        return replace(sharing, **dict(self.sharing_overrides))


@dataclass
class ModeResult:
    """Everything measured for one mode (Base or SS) of one experiment."""

    label: str
    workload: WorkloadResult
    cpu: CpuBreakdown
    reads_per_bucket: List[float] = field(default_factory=list)
    seeks_per_bucket: List[float] = field(default_factory=list)
    per_stream_elapsed: Dict[int, float] = field(default_factory=dict)
    per_query_elapsed: Dict[str, float] = field(default_factory=dict)
    throttle_waits: int = 0
    scans_joined: int = 0

    @property
    def makespan(self) -> float:
        return self.workload.makespan

    @property
    def pages_read(self) -> int:
        return self.workload.pages_read

    @property
    def seeks(self) -> int:
        return self.workload.seeks


@dataclass
class Comparison:
    """A matched Base/SS pair with the paper's three headline gains."""

    base: ModeResult
    shared: ModeResult

    @property
    def end_to_end_gain(self) -> float:
        """Percent end-to-end improvement (paper Table 1, column 1)."""
        return percent_gain(self.base.makespan, self.shared.makespan)

    @property
    def disk_read_gain(self) -> float:
        """Percent reduction in pages read (paper Table 1, column 2)."""
        return percent_gain(self.base.pages_read, self.shared.pages_read)

    @property
    def disk_seek_gain(self) -> float:
        """Percent reduction in seeks (paper Table 1, column 3)."""
        return percent_gain(float(self.base.seeks), float(self.shared.seeks))


def expected_table_pages(settings: ExperimentSettings, name: str,
                         extent_size: int = 16) -> int:
    """Page count a table will get at these settings (mirrors the
    sizing logic in :func:`repro.workloads.tpch_schema.make_tpch_database`)."""
    from repro.workloads.tpch_schema import TPCH_BASE_PAGES

    return max(extent_size, int(TPCH_BASE_PAGES[name] * settings.scale))


def expected_pool_pages(settings: ExperimentSettings,
                        extent_size: int = 16) -> int:
    """Bufferpool size the database will get at these settings."""
    from repro.workloads.tpch_schema import TPCH_BASE_PAGES

    total = sum(
        max(extent_size, int(pages * settings.scale))
        for pages in TPCH_BASE_PAGES.values()
    )
    defaults = SystemConfig()
    return max(defaults.min_pool_pages, int(total * settings.pool_fraction))


#: Sentinel distinguishing "no fault_plan argument" from "explicit None".
_UNSET_PLAN = object()


def build_database(
    settings: ExperimentSettings,
    sharing: SharingConfig,
    fault_plan: object = _UNSET_PLAN,
) -> Database:
    """A TPC-H database wired for one experiment mode.

    ``fault_plan`` overrides the plan the settings would derive — the
    cluster layer passes each replica's pre-filtered sub-plan (or None
    when no clause survives the ``replica=`` pin).
    """
    if fault_plan is _UNSET_PLAN:
        fault_plan = settings.fault_plan()
    config = SystemConfig(
        n_cpus=settings.n_cpus,
        pool_pages=settings.pool_pages,
        pool_fraction=settings.pool_fraction,
        policy=settings.policy,
        sharing_policy=settings.sharing_policy,
        disk_scheduler=settings.disk_scheduler,
        n_disks=settings.device_count,
        stripe_extents=settings.stripe_extents,
        push_enabled=settings.push_prefetch,
        agg_strategy=settings.agg_strategy,
        sharing=sharing,
        seed=settings.seed,
        fault_plan=fault_plan,
    )
    return make_tpch_database(config, scale=settings.scale)


def run_mode(
    settings: ExperimentSettings,
    sharing: SharingConfig,
    label: str,
    streams: Optional[Sequence[Sequence[QuerySpec]]] = None,
    stagger_list: Optional[Sequence[float]] = None,
    timeline_buckets: int = 40,
) -> ModeResult:
    """Run one workload under one configuration and collect everything."""
    if sharing.enabled:
        sharing = settings.apply_sharing_overrides(sharing)
    db = build_database(settings, sharing)
    if streams is None:
        streams = tpch_streams(
            settings.n_streams,
            seed=settings.seed,
            query_names=list(settings.query_names) if settings.query_names else None,
        )
    workload = run_workload(
        db, streams, stagger=settings.stagger, stagger_list=stagger_list
    )
    until = max(db.sim.now, 1e-9)
    bucket = until / timeline_buckets
    return ModeResult(
        label=label,
        workload=workload,
        cpu=db.cpu_breakdown(),
        reads_per_bucket=db.disk.stats.pages_read_per_bucket(until, bucket),
        seeks_per_bucket=db.disk.stats.seeks_per_bucket(until, bucket),
        per_stream_elapsed={
            s.stream_id: s.elapsed for s in workload.streams
        },
        per_query_elapsed=workload.query_mean_elapsed(),
        throttle_waits=db.sharing.stats.throttle_waits,
        scans_joined=(
            db.sharing.stats.scans_joined_ongoing
            + db.sharing.stats.scans_joined_last_finished
        ),
    )


def compare_modes(
    settings: ExperimentSettings,
    shared_config: Optional[SharingConfig] = None,
    streams: Optional[Sequence[Sequence[QuerySpec]]] = None,
    stagger_list: Optional[Sequence[float]] = None,
) -> Comparison:
    """Run the same workload under Base and SS configurations."""
    base = run_mode(
        settings, SharingConfig(enabled=False), "Base",
        streams=streams, stagger_list=stagger_list,
    )
    shared = run_mode(
        settings, shared_config or SharingConfig(), "SS",
        streams=streams, stagger_list=stagger_list,
    )
    return Comparison(base=base, shared=shared)
