"""One function per table/figure of the evaluation (plus ablations).

Every function returns a result object with a ``render()`` method that
prints the same rows/series the paper reports.  See DESIGN.md for the
experiment index and EXPERIMENTS.md for paper-vs-measured numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.config import SharingConfig
from repro.engine.query import QuerySpec
from repro.experiments.harness import (
    Comparison,
    ExperimentSettings,
    ModeResult,
    compare_modes,
    run_mode,
)
from repro.metrics.report import format_series, format_table, percent_gain
from repro.workloads.tpch_queries import make_query


# ----------------------------------------------------------------------
# E1 — single-stream overhead
# ----------------------------------------------------------------------


@dataclass
class OverheadResult:
    """E1: the sharing machinery's cost without concurrency."""

    comparison: Comparison

    @property
    def overhead_percent(self) -> float:
        """Positive = SS slower than Base (this is overhead, not gain)."""
        return -self.comparison.end_to_end_gain

    def render(self) -> str:
        rows = [
            ["Base", self.comparison.base.makespan],
            ["SS", self.comparison.shared.makespan],
            ["overhead %", self.overhead_percent],
        ]
        return format_table(["configuration", "single-stream time (s)"], rows)


def e1_overhead(settings: Optional[ExperimentSettings] = None) -> OverheadResult:
    """E1: run one full stream with and without the sharing machinery."""
    settings = (settings or ExperimentSettings()).with_(n_streams=1)
    return OverheadResult(comparison=compare_modes(settings))


# ----------------------------------------------------------------------
# E2/E3 — staggered single-query runs (Figures 15/16 analogs)
# ----------------------------------------------------------------------


@dataclass
class StaggeredResult:
    """Staggered identical queries: per-run timings + CPU distribution."""

    query_name: str
    comparison: Comparison
    per_run_base: List[float] = field(default_factory=list)
    per_run_shared: List[float] = field(default_factory=list)

    def per_run_gains(self) -> List[float]:
        """Percent gain of each staggered run."""
        return [
            percent_gain(base, shared)
            for base, shared in zip(self.per_run_base, self.per_run_shared)
        ]

    def render(self) -> str:
        cpu_rows = []
        for bucket in ("user", "system", "idle", "iowait"):
            cpu_rows.append([
                bucket,
                100 * self.comparison.base.cpu.as_dict()[bucket],
                100 * self.comparison.shared.cpu.as_dict()[bucket],
            ])
        timing_rows = [
            [f"{i + 1}{_ordinal(i + 1)} {self.query_name}", base, shared,
             percent_gain(base, shared)]
            for i, (base, shared) in enumerate(
                zip(self.per_run_base, self.per_run_shared)
            )
        ]
        return (
            format_table(["CPU bucket", "Base %", "SS %"], cpu_rows)
            + "\n\n"
            + format_table(
                ["run", "Base (s)", "SS (s)", "gain %"], timing_rows
            )
        )


def _ordinal(n: int) -> str:
    return {1: "st", 2: "nd", 3: "rd"}.get(n, "th")


def _staggered_query(query_name: str, settings: ExperimentSettings) -> QuerySpec:
    """The staggered experiments' query, with scale-invariant geometry.

    On the paper's 100 GB system, Q6's one-year slice is ~2.8× the
    bufferpool, so later runs cannot ride the cache for free.  At reduced
    scale a literal one-year slice can fall *inside* the pool floor and
    the experiment degenerates; we therefore size the scanned range to
    the same multiple of the actual pool.
    """
    from repro.engine.expressions import col
    from repro.engine.operators import AggSpec
    from repro.engine.query import ScanStep
    from repro.experiments.harness import expected_pool_pages, expected_table_pages
    from repro.workloads.tpch_schema import DATE_RANGE_DAYS

    rng = np.random.default_rng(settings.seed)
    if query_name != "Q6":
        return make_query(query_name, rng)
    lineitem_pages = expected_table_pages(settings, "lineitem")
    pool_pages = expected_pool_pages(settings)
    fraction = min(0.95, 2.8 * pool_pages / lineitem_pages)
    span = DATE_RANGE_DAYS * fraction
    start = DATE_RANGE_DAYS - span  # the warehouse's most recent data
    return QuerySpec(
        name="Q6",
        steps=(
            ScanStep(
                table="lineitem",
                cluster_range=(start, DATE_RANGE_DAYS),
                predicate=(
                    col("l_discount").between(0.05, 0.07)
                    & (col("l_quantity") < _lit24())
                ),
                aggregates=(
                    AggSpec("revenue", "sum",
                            col("l_extendedprice") * col("l_discount")),
                ),
                label="lineitem",
            ),
        ),
    )


def _lit24():
    from repro.engine.expressions import lit

    return lit(24)


def _staggered(
    query_name: str, settings: ExperimentSettings, n_runs: int, gap_fraction: float
) -> StaggeredResult:
    """Run ``n_runs`` copies of one query, started a fixed gap apart.

    The paper staggers by 10 s on a 100 GB system; we stagger by a fixed
    fraction of the single-query runtime, which preserves the overlap
    geometry at any scale.
    """
    query = _staggered_query(query_name, settings)
    streams = [[query] for _ in range(n_runs)]

    # Calibrate the stagger from a solo base run of the same query.
    solo = run_mode(
        settings.with_(n_streams=1), SharingConfig(enabled=False), "solo",
        streams=[[query]],
    )
    gap = solo.makespan * gap_fraction
    stagger_list = [i * gap for i in range(n_runs)]

    comparison = compare_modes(settings, streams=streams,
                               stagger_list=stagger_list)

    def per_run(mode: ModeResult) -> List[float]:
        ordered = sorted(mode.workload.streams, key=lambda s: s.stream_id)
        return [s.queries[0].elapsed for s in ordered]

    return StaggeredResult(
        query_name=query_name,
        comparison=comparison,
        per_run_base=per_run(comparison.base),
        per_run_shared=per_run(comparison.shared),
    )


def e2_staggered_q6(
    settings: Optional[ExperimentSettings] = None,
    n_runs: int = 3,
    gap_fraction: float = 0.25,
) -> StaggeredResult:
    """E2: three staggered Q6 runs (I/O-intensive, Figure-15 analog)."""
    return _staggered("Q6", settings or ExperimentSettings(), n_runs, gap_fraction)


def e3_staggered_q1(
    settings: Optional[ExperimentSettings] = None,
    n_runs: int = 3,
    gap_fraction: float = 0.25,
) -> StaggeredResult:
    """E3: three staggered Q1 runs (CPU-intensive, Figure-16 analog)."""
    return _staggered("Q1", settings or ExperimentSettings(), n_runs, gap_fraction)


# ----------------------------------------------------------------------
# E4 — multi-stream throughput (Table 1 analog)
# ----------------------------------------------------------------------


@dataclass
class ThroughputResult:
    """E4 (and the data behind E5–E8): the full throughput comparison."""

    comparison: Comparison

    @property
    def end_to_end_gain(self) -> float:
        return self.comparison.end_to_end_gain

    @property
    def disk_read_gain(self) -> float:
        return self.comparison.disk_read_gain

    @property
    def disk_seek_gain(self) -> float:
        return self.comparison.disk_seek_gain

    def render(self) -> str:
        rows = [[
            f"{self.end_to_end_gain:.0f}%",
            f"{self.disk_read_gain:.0f}%",
            f"{self.disk_seek_gain:.0f}%",
        ]]
        return format_table(
            ["End-to-end gain", "Avg. disk read gain", "Avg. disk seek gain"],
            rows,
        )


def e4_throughput(
    settings: Optional[ExperimentSettings] = None,
) -> ThroughputResult:
    """E4: N-stream TPC-H throughput run, Base vs SS (Table 1 analog)."""
    return ThroughputResult(comparison=compare_modes(settings or ExperimentSettings()))


# ----------------------------------------------------------------------
# E5/E6 — disk activity over time (Figures 17/18 analogs)
# ----------------------------------------------------------------------


@dataclass
class TimelineResult:
    """A bucketed time series for Base and SS."""

    metric: str
    base_series: List[float]
    shared_series: List[float]

    def shared_total_lower(self) -> bool:
        """Whether SS's series sums below Base's."""
        return sum(self.shared_series) < sum(self.base_series)

    def render(self) -> str:
        return (
            format_series(f"Base {self.metric}", self.base_series)
            + "\n"
            + format_series(f"SS {self.metric}", self.shared_series)
        )


def e5_reads_timeline(
    settings: Optional[ExperimentSettings] = None,
    comparison: Optional[Comparison] = None,
) -> TimelineResult:
    """E5: pages read per time bucket (Figure-17 analog)."""
    comparison = comparison or compare_modes(settings or ExperimentSettings())
    return TimelineResult(
        metric="pages read / bucket",
        base_series=comparison.base.reads_per_bucket,
        shared_series=comparison.shared.reads_per_bucket,
    )


def e6_seeks_timeline(
    settings: Optional[ExperimentSettings] = None,
    comparison: Optional[Comparison] = None,
) -> TimelineResult:
    """E6: seeks per time bucket (Figure-18 analog)."""
    comparison = comparison or compare_modes(settings or ExperimentSettings())
    return TimelineResult(
        metric="seeks / bucket",
        base_series=comparison.base.seeks_per_bucket,
        shared_series=comparison.shared.seeks_per_bucket,
    )


# ----------------------------------------------------------------------
# E7/E8 — per-stream and per-query gains (Figures 19/20 analogs)
# ----------------------------------------------------------------------


@dataclass
class PerStreamResult:
    """E7: stream-by-stream comparison."""

    base_elapsed: Dict[int, float]
    shared_elapsed: Dict[int, float]

    def gains(self) -> Dict[int, float]:
        return {
            stream_id: percent_gain(self.base_elapsed[stream_id],
                                    self.shared_elapsed[stream_id])
            for stream_id in sorted(self.base_elapsed)
        }

    def render(self) -> str:
        rows = [
            [f"stream {sid}", self.base_elapsed[sid], self.shared_elapsed[sid],
             gain]
            for sid, gain in self.gains().items()
        ]
        return format_table(["stream", "Base (s)", "SS (s)", "gain %"], rows)


def e7_per_stream(
    settings: Optional[ExperimentSettings] = None,
    comparison: Optional[Comparison] = None,
) -> PerStreamResult:
    """E7: per-stream elapsed times (Figure-19 analog)."""
    comparison = comparison or compare_modes(settings or ExperimentSettings())
    return PerStreamResult(
        base_elapsed=comparison.base.per_stream_elapsed,
        shared_elapsed=comparison.shared.per_stream_elapsed,
    )


@dataclass
class PerQueryResult:
    """E8: query-template-by-template comparison."""

    base_elapsed: Dict[str, float]
    shared_elapsed: Dict[str, float]

    def gains(self) -> Dict[str, float]:
        return {
            name: percent_gain(self.base_elapsed[name], self.shared_elapsed[name])
            for name in sorted(self.base_elapsed, key=_query_sort_key)
        }

    def regressions(self, tolerance_percent: float = 5.0) -> List[str]:
        """Queries slower under SS by more than the tolerance."""
        return [
            name for name, gain in self.gains().items()
            if gain < -tolerance_percent
        ]

    def render(self) -> str:
        rows = [
            [name, self.base_elapsed[name], self.shared_elapsed[name], gain]
            for name, gain in self.gains().items()
        ]
        return format_table(["query", "Base (s)", "SS (s)", "gain %"], rows)


def _query_sort_key(name: str):
    try:
        return (0, int(name.lstrip("Q")))
    except ValueError:
        return (1, name)


def e8_per_query(
    settings: Optional[ExperimentSettings] = None,
    comparison: Optional[Comparison] = None,
) -> PerQueryResult:
    """E8: mean per-query elapsed times (Figure-20 analog)."""
    comparison = comparison or compare_modes(settings or ExperimentSettings())
    return PerQueryResult(
        base_elapsed=comparison.base.per_query_elapsed,
        shared_elapsed=comparison.shared.per_query_elapsed,
    )


# ----------------------------------------------------------------------
# E9 — stream scaling (the paper's closing scalability claim)
# ----------------------------------------------------------------------


@dataclass
class StreamScalingResult:
    """E9: throughput as the number of concurrent streams grows."""

    # stream count -> Comparison
    points: Dict[int, Comparison] = field(default_factory=dict)

    def throughput(self, n_streams: int, shared: bool) -> float:
        """Queries per second at a stream count."""
        comparison = self.points[n_streams]
        mode = comparison.shared if shared else comparison.base
        n_queries = sum(
            len(stream.queries) for stream in mode.workload.streams
        )
        return n_queries / mode.makespan

    def render(self) -> str:
        rows = []
        for n_streams in sorted(self.points):
            comparison = self.points[n_streams]
            rows.append([
                n_streams,
                comparison.base.makespan,
                comparison.shared.makespan,
                self.throughput(n_streams, shared=False),
                self.throughput(n_streams, shared=True),
                comparison.end_to_end_gain,
            ])
        return format_table(
            ["streams", "Base (s)", "SS (s)", "Base q/s", "SS q/s", "gain %"],
            rows,
        )


def e9_stream_scaling(
    settings: Optional[ExperimentSettings] = None,
    stream_counts: Sequence[int] = (2, 4, 6, 8),
) -> StreamScalingResult:
    """E9: "the reduced disk utilization may be used to scale to a larger
    number of streams with the same hardware" — measure throughput vs
    concurrency for Base and SS."""
    settings = settings or ExperimentSettings()
    result = StreamScalingResult()
    for n_streams in stream_counts:
        result.points[n_streams] = compare_modes(
            settings.with_(n_streams=n_streams)
        )
    return result


# ----------------------------------------------------------------------
# Ablations
# ----------------------------------------------------------------------


@dataclass
class SweepResult:
    """A labelled sweep of one knob: label -> (makespan, pages read)."""

    knob: str
    rows: List[Tuple[str, float, int, int]]  # label, makespan, pages, seeks

    def makespans(self) -> Dict[str, float]:
        return {label: makespan for label, makespan, _p, _s in self.rows}

    def render(self) -> str:
        return format_table(
            [self.knob, "makespan (s)", "pages read", "seeks"],
            [list(row) for row in self.rows],
        )


def _sweep_sharing_configs(
    settings: ExperimentSettings,
    variants: Sequence[Tuple[str, SharingConfig]],
    streams: Optional[Sequence[Sequence[QuerySpec]]] = None,
) -> SweepResult:
    rows = []
    for label, sharing in variants:
        mode = run_mode(settings, sharing, label, streams=streams)
        rows.append((label, mode.makespan, mode.pages_read, mode.seeks))
    return SweepResult(knob="configuration", rows=rows)


def ablation_throttling(
    settings: Optional[ExperimentSettings] = None,
) -> SweepResult:
    """A1: the full mechanism vs sharing without throttling vs Base."""
    settings = settings or ExperimentSettings()
    return _sweep_sharing_configs(settings, [
        ("base", SharingConfig(enabled=False)),
        ("no-throttle", SharingConfig(throttling_enabled=False)),
        ("full", SharingConfig()),
    ])


def ablation_priority(
    settings: Optional[ExperimentSettings] = None,
) -> SweepResult:
    """A2: page prioritization on vs off."""
    settings = settings or ExperimentSettings()
    return _sweep_sharing_configs(settings, [
        ("base", SharingConfig(enabled=False)),
        ("no-priority", SharingConfig(prioritization_enabled=False)),
        ("full", SharingConfig()),
    ])


def ablation_threshold(
    settings: Optional[ExperimentSettings] = None,
    thresholds: Sequence[float] = (1.0, 2.0, 4.0, 8.0, 16.0),
) -> SweepResult:
    """A3: leader–trailer distance threshold sweep (extents)."""
    settings = settings or ExperimentSettings()
    variants = [
        (
            f"{threshold:g} extents",
            SharingConfig(
                distance_threshold_extents=threshold,
                target_distance_extents=min(1.0, threshold),
            ),
        )
        for threshold in thresholds
    ]
    result = _sweep_sharing_configs(settings, variants)
    return SweepResult(knob="drift threshold", rows=result.rows)


def ablation_bufferpool_sweep(
    settings: Optional[ExperimentSettings] = None,
    fractions: Sequence[float] = (0.05, 0.10, 0.20, 0.40, 1.50),
) -> Dict[float, Comparison]:
    """A4: sharing benefit as a function of bufferpool size.

    Pool sizes are set explicitly from the scaled database size (bypassing
    the safety floor that would otherwise flatten small fractions at
    reduced scale), with a hard minimum that still covers concurrent
    pins and prefetch runs.

    Expected shape: benefit grows with the pool while the pool is too
    small to hold scan-group working sets, peaks, and collapses once the
    pool caches the whole database (the 1.5× point), where even unshared
    scans stop doing I/O.
    """
    from repro.experiments.harness import expected_table_pages
    from repro.workloads.tpch_schema import TPCH_BASE_PAGES

    settings = settings or ExperimentSettings()
    total_pages = sum(
        expected_table_pages(settings, name) for name in TPCH_BASE_PAGES
    )
    out = {}
    for fraction in fractions:
        pool_pages = max(48, int(total_pages * fraction))
        out[fraction] = compare_modes(settings.with_(pool_pages=pool_pages))
    return out


def ablation_policies(
    settings: Optional[ExperimentSettings] = None,
    policies: Sequence[str] = ("lru", "lru-k", "2q", "arc", "clock", "priority-lru"),
) -> SweepResult:
    """A5: baseline victim policies vs the full sharing mechanism.

    Every row except the last runs *without* sharing (pure policy
    comparison); the last row is the paper's mechanism on priority-LRU.
    """
    settings = settings or ExperimentSettings()
    rows = []
    for policy in policies:
        mode = run_mode(
            settings.with_(policy=policy), SharingConfig(enabled=False),
            label=policy,
        )
        rows.append((f"{policy} (no sharing)", mode.makespan,
                     mode.pages_read, mode.seeks))
    shared = run_mode(settings, SharingConfig(), "sharing")
    rows.append(("priority-lru + sharing", shared.makespan,
                 shared.pages_read, shared.seeks))
    return SweepResult(knob="victim policy", rows=rows)


def ablation_disk_scheduler(
    settings: Optional[ExperimentSettings] = None,
) -> SweepResult:
    """A7: device-level elevator scheduling vs scan coordination.

    The elevator (LOOK) scheduler is the classic device-side answer to
    seek storms; it shortens seek travel but cannot remove the *re-read
    volume* that uncoordinated scans generate.  The sweep shows both
    levers separately and combined.
    """
    settings = settings or ExperimentSettings()
    rows = []
    for scheduler in ("fifo", "elevator"):
        for sharing_on in (False, True):
            label = f"{scheduler}{' + sharing' if sharing_on else ''}"
            mode = run_mode(
                settings.with_(disk_scheduler=scheduler),
                SharingConfig(enabled=sharing_on),
                label,
            )
            rows.append((label, mode.makespan, mode.pages_read, mode.seeks))
    return SweepResult(knob="disk scheduler", rows=rows)


def ablation_disk_array(
    settings: Optional[ExperimentSettings] = None,
    disk_counts: Sequence[int] = (1, 2, 4),
) -> Dict[int, Comparison]:
    """A9: does more storage hardware substitute for coordination?

    Sweeping the spindle count shows that striping attacks service time
    while sharing attacks *demand*: the read-volume gain is hardware-
    independent, so coordination keeps paying on any array size.
    """
    settings = settings or ExperimentSettings()
    out: Dict[int, Comparison] = {}
    for n_disks in disk_counts:
        out[n_disks] = compare_modes(settings.with_(device_count=n_disks))
    return out


def ablation_fairness_cap(
    settings: Optional[ExperimentSettings] = None,
    caps: Sequence[float] = (0.0, 0.4, 0.8, 1.0),
) -> SweepResult:
    """A6: the accumulated-slowdown cap around the paper's 80 %."""
    settings = settings or ExperimentSettings()
    variants = [
        (f"cap {cap:.0%}", SharingConfig(slowdown_cap_fraction=cap))
        for cap in caps
    ]
    result = _sweep_sharing_configs(settings, variants)
    return SweepResult(knob="fairness cap", rows=result.rows)
