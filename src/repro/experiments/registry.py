"""Experiment registry: the single source of truth for experiment ids.

Every runnable experiment (the paper's E1–E9 plus the A-series
ablations) is described by one :class:`ExperimentSpec` mapping its id to
a callable, a one-line description, and — via :func:`metrics_of` and
:func:`render_result` — a uniform way to turn its heterogeneous result
object into structured metrics and printable text.  The CLI, the
parallel runner, and the benchmarks all dispatch through this table
instead of keeping private experiment lists.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Tuple

from repro.experiments.experiments import (
    OverheadResult,
    PerQueryResult,
    PerStreamResult,
    StaggeredResult,
    StreamScalingResult,
    SweepResult,
    ThroughputResult,
    TimelineResult,
    ablation_bufferpool_sweep,
    ablation_disk_array,
    ablation_disk_scheduler,
    ablation_fairness_cap,
    ablation_policies,
    ablation_priority,
    ablation_threshold,
    ablation_throttling,
    e1_overhead,
    e2_staggered_q6,
    e3_staggered_q1,
    e4_throughput,
    e5_reads_timeline,
    e6_seeks_timeline,
    e7_per_stream,
    e8_per_query,
    e9_stream_scaling,
)
from repro.experiments.aggregation import (
    AggCompeteResult,
    AggMixResult,
    JoinResult,
    ag_compete,
    ag_mix,
    mj_join,
)
from repro.experiments.harness import Comparison, ExperimentSettings
from repro.experiments.policies import (
    PolicyComparisonResult,
    PolicyMixResult,
    pl_head2head,
    pl_mix,
)
from repro.experiments.striped import (
    StripedPushResult,
    StripedScalingResult,
    st_push,
    st_scaling,
)
from repro.metrics.report import format_table
from repro.service.metrics import ServiceComparison, ServiceResult
from repro.service.scenarios import sv_burst, sv_overload, sv_soak, sv_steady


class UnknownExperimentError(KeyError):
    """Raised when an experiment id is not in the registry."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return (
            f"unknown experiment {self.name!r} "
            f"(known: {', '.join(sorted(REGISTRY))})"
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """One registered experiment: id, description, and its callable."""

    name: str
    description: str
    run: Callable[[ExperimentSettings], Any]

    def execute(self, settings: ExperimentSettings) -> Any:
        """Run the experiment and return its (heterogeneous) result."""
        return self.run(settings)


#: id -> spec, populated below; iterate with :func:`all_experiments`.
REGISTRY: Dict[str, ExperimentSpec] = {}


def register(name: str, description: str,
             run: Callable[[ExperimentSettings], Any]) -> ExperimentSpec:
    """Add one experiment to the registry (last registration wins)."""
    spec = ExperimentSpec(name=name, description=description, run=run)
    REGISTRY[name] = spec
    return spec


def get(name: str) -> ExperimentSpec:
    """Look up one experiment; raises :class:`UnknownExperimentError`."""
    try:
        return REGISTRY[name]
    except KeyError:
        raise UnknownExperimentError(name) from None


def all_experiments() -> List[ExperimentSpec]:
    """Every registered experiment, in sorted-id order."""
    return [REGISTRY[name] for name in sorted(REGISTRY)]


register("e1", "single-stream overhead (paper: < 1 %)", e1_overhead)
register("e2", "3 staggered I/O-bound queries (Figure-15 analog)",
         e2_staggered_q6)
register("e3", "3 staggered CPU-bound queries (Figure-16 analog)",
         e3_staggered_q1)
register("e4", "multi-stream throughput gains (Table-1 analog)",
         e4_throughput)
register("e5", "disk reads over time (Figure-17 analog)", e5_reads_timeline)
register("e6", "disk seeks over time (Figure-18 analog)", e6_seeks_timeline)
register("e7", "per-stream gains (Figure-19 analog)", e7_per_stream)
register("e8", "per-query gains (Figure-20 analog)", e8_per_query)
register("e9", "throughput vs number of streams (scalability claim)",
         e9_stream_scaling)
register("a1", "ablation: throttling on/off", ablation_throttling)
register("a2", "ablation: page prioritization on/off", ablation_priority)
register("a3", "ablation: drift-threshold sweep", ablation_threshold)
register("a4", "ablation: bufferpool-size sweep", ablation_bufferpool_sweep)
register("a5", "related work: victim-policy comparison", ablation_policies)
register("a6", "ablation: fairness-cap sweep", ablation_fairness_cap)
register("a7", "ablation: disk scheduler vs coordination",
         ablation_disk_scheduler)
register("a9", "ablation: spindle count vs coordination", ablation_disk_array)
register("pl-mix", "policy: stream mix under settings.sharing_policy "
         "(sweep over sharing_policy for a comparison table)", pl_mix)
register("pl-head2head",
         "policy: Base vs grouping-throttling vs cooperative vs pbm",
         pl_head2head)
register("sv-steady", "service: steady mixed open+closed load", sv_steady)
register("sv-overload",
         "service: overload backpressure, controller on vs off", sv_overload)
register("sv-burst", "service: bursty MMPP arrivals", sv_burst)
register("sv-soak", "service: long mixed soak (chaos-ready)", sv_soak)
# The cluster layer sits above the experiment harness (its service
# builds databases through it), so these three import lazily to keep
# registry import-time cycle-free.


def _sv_cluster_steady(settings: ExperimentSettings) -> Any:
    from repro.cluster.scenarios import sv_cluster_steady
    return sv_cluster_steady(settings)


def _sv_cluster_skew(settings: ExperimentSettings) -> Any:
    from repro.cluster.scenarios import sv_cluster_skew
    return sv_cluster_skew(settings)


def _sv_cluster_scale(settings: ExperimentSettings) -> Any:
    from repro.cluster.scenarios import sv_cluster_scale
    return sv_cluster_scale(settings)


register("sv-cluster-steady",
         "cluster: mixed load over a replicated fleet (rf=2, least-loaded)",
         _sv_cluster_steady)
register("sv-cluster-skew",
         "cluster: zipf users + zipf tables, hot-shard stress",
         _sv_cluster_skew)
register("sv-cluster-scale",
         "cluster: identical load over 1/2/4 replicas (scaling claim)",
         _sv_cluster_scale)
register("st-push",
         "striped: pull vs push prefetch pipeline at --device-count",
         st_push)
register("st-scaling",
         "striped: push-pipeline throughput over 1/2/4 devices", st_scaling)
register("ag-compete",
         "budgeted: spillable aggregation vs scans, Base vs SS", ag_compete)
register("ag-mix",
         "budgeted: scans-plus-aggregation mix under settings.sharing_policy "
         "(sweep over sharing_policy for a comparison table)", ag_mix)
register("mj-join",
         "budgeted: multibuffer hash joins among range scans", mj_join)


# ----------------------------------------------------------------------
# Uniform metric extraction
# ----------------------------------------------------------------------


def comparison_metrics(comparison: Comparison) -> Dict[str, Any]:
    """The headline numbers of one Base-vs-SS pair."""
    return {
        "base_makespan": comparison.base.makespan,
        "shared_makespan": comparison.shared.makespan,
        "base_pages_read": comparison.base.pages_read,
        "shared_pages_read": comparison.shared.pages_read,
        "base_seeks": comparison.base.seeks,
        "shared_seeks": comparison.shared.seeks,
        "end_to_end_gain_percent": comparison.end_to_end_gain,
        "disk_read_gain_percent": comparison.disk_read_gain,
        "disk_seek_gain_percent": comparison.disk_seek_gain,
    }


def metrics_of(result: Any) -> Dict[str, Any]:
    """Flatten any registered experiment's result into a JSON-safe dict.

    The dict is the unit of caching and digesting: two runs are "the
    same" exactly when their metrics dicts serialize identically.
    """
    if isinstance(result, OverheadResult):
        metrics = comparison_metrics(result.comparison)
        metrics["overhead_percent"] = result.overhead_percent
        return metrics
    if isinstance(result, StaggeredResult):
        metrics = comparison_metrics(result.comparison)
        metrics["query"] = result.query_name
        metrics["per_run_base"] = list(result.per_run_base)
        metrics["per_run_shared"] = list(result.per_run_shared)
        metrics["per_run_gain_percent"] = result.per_run_gains()
        return metrics
    if isinstance(result, ThroughputResult):
        return comparison_metrics(result.comparison)
    if isinstance(result, TimelineResult):
        return {
            "metric": result.metric,
            "base_series": list(result.base_series),
            "shared_series": list(result.shared_series),
            "base_total": sum(result.base_series),
            "shared_total": sum(result.shared_series),
        }
    if isinstance(result, PerStreamResult):
        return {
            "base_elapsed": {str(k): v for k, v in result.base_elapsed.items()},
            "shared_elapsed": {
                str(k): v for k, v in result.shared_elapsed.items()
            },
            "gain_percent": {str(k): v for k, v in result.gains().items()},
        }
    if isinstance(result, PerQueryResult):
        return {
            "base_elapsed": dict(result.base_elapsed),
            "shared_elapsed": dict(result.shared_elapsed),
            "gain_percent": result.gains(),
        }
    if isinstance(result, StreamScalingResult):
        return {
            str(n): dict(
                comparison_metrics(result.points[n]),
                base_qps=result.throughput(n, shared=False),
                shared_qps=result.throughput(n, shared=True),
            )
            for n in sorted(result.points)
        }
    if isinstance(result, SweepResult):
        return {
            "knob": result.knob,
            "rows": [
                {"label": label, "makespan": makespan,
                 "pages_read": pages, "seeks": seeks}
                for label, makespan, pages, seeks in result.rows
            ],
        }
    if isinstance(result, (PolicyMixResult, PolicyComparisonResult)):
        return result.metrics()
    if isinstance(result, (AggCompeteResult, AggMixResult, JoinResult)):
        return result.metrics()
    if isinstance(result, (StripedPushResult, StripedScalingResult)):
        return result.metrics()
    if isinstance(result, Comparison):
        return comparison_metrics(result)
    if isinstance(result, (ServiceResult, ServiceComparison)):
        return result.metrics()
    from repro.cluster.service import ClusterResult, ClusterScalingResult
    if isinstance(result, (ClusterResult, ClusterScalingResult)):
        return result.metrics()
    if isinstance(result, dict):  # a4 / a9: sweep key -> Comparison
        return {str(key): metrics_of(value)
                for key, value in sorted(result.items())}
    raise TypeError(f"no metric extraction for {type(result).__name__}")


# ----------------------------------------------------------------------
# Uniform rendering
# ----------------------------------------------------------------------


def render_result(result: Any) -> str:
    """Printable text for any registered experiment's result."""
    if isinstance(result, dict):  # a4 / a9 return {knob value: Comparison}
        keys: Tuple[Any, ...] = tuple(result)
        integral = all(isinstance(key, int) for key in keys)
        header = "disks" if integral else "pool"
        rows = [
            [key if integral else f"{key:.0%}",
             c.base.makespan, c.shared.makespan, c.end_to_end_gain,
             c.disk_read_gain]
            for key, c in sorted(result.items())
        ]
        return format_table(
            [header, "Base (s)", "SS (s)", "e2e gain %", "read gain %"], rows
        )
    return result.render()
