"""`st-*` experiments: striped storage and the push prefetch pipeline.

Two questions the single-disk experiments cannot answer:

* **st-push** — at a fixed device count, what does switching the shared
  workload from the classic pull model to the leader-driven push
  pipeline buy?  (One fetch per extent fanned out to the whole consumer
  set, no trailer re-requests.)
* **st-scaling** — with the push pipeline on, does multi-stream
  throughput actually scale as the address space is striped over more
  devices?  (The paper's testbeds were arrays; the reproduction was a
  single arm until now.)

Both report per-device request/seek/busy tables next to the aggregate,
exercising the :class:`~repro.disk.array.ArrayStats` per-device split.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from repro.core.config import SharingConfig
from repro.experiments.harness import ExperimentSettings, build_database
from repro.engine.executor import run_workload
from repro.metrics.report import format_table, percent_gain
from repro.workloads.streams import tpch_streams


def per_device_stats(db) -> List[Dict[str, Any]]:
    """One row per spindle: requests, pages, seeks, busy time.

    A single :class:`~repro.disk.device.Disk` yields one row, so callers
    never special-case the device count.
    """
    disks = getattr(db.disk, "disks", None) or [db.disk]
    return [
        {
            "device": disk.device_index,
            "reads": disk.stats.reads,
            "pages_read": disk.stats.pages_read,
            "seeks": disk.stats.seeks,
            "busy_time": disk.stats.busy_time,
        }
        for disk in disks
    ]


@dataclass
class StripedMode:
    """Everything measured for one mode of a striped experiment."""

    label: str
    device_count: int
    makespan: float
    queries: int
    pages_read: int
    seeks: int
    buffer_hit_ratio: float
    pushed_pages: int
    push_deliveries: int
    per_device: List[Dict[str, Any]] = field(default_factory=list)

    @property
    def throughput_qps(self) -> float:
        """Queries finished per simulated second."""
        if self.makespan <= 0:
            return 0.0
        return self.queries / self.makespan

    def metrics(self) -> Dict[str, Any]:
        return {
            "makespan": self.makespan,
            "throughput_qps": self.throughput_qps,
            "pages_read": self.pages_read,
            "seeks": self.seeks,
            "buffer_hit_ratio": self.buffer_hit_ratio,
            "pushed_pages": self.pushed_pages,
            "push_deliveries": self.push_deliveries,
            "per_device": [dict(row) for row in self.per_device],
        }


def _run_striped_mode(
    settings: ExperimentSettings, sharing: SharingConfig, label: str
) -> StripedMode:
    """Run the standard multi-stream workload and keep device detail."""
    if sharing.enabled:
        sharing = settings.apply_sharing_overrides(sharing)
    db = build_database(settings, sharing)
    streams = tpch_streams(
        settings.n_streams,
        seed=settings.seed,
        query_names=list(settings.query_names) if settings.query_names else None,
    )
    workload = run_workload(db, streams, stagger=settings.stagger)
    push = db.push
    return StripedMode(
        label=label,
        device_count=settings.device_count,
        makespan=workload.makespan,
        queries=sum(len(stream) for stream in streams),
        pages_read=workload.pages_read,
        seeks=workload.seeks,
        buffer_hit_ratio=workload.buffer_hit_ratio,
        pushed_pages=db.pool.stats.pushed_pages,
        push_deliveries=push.stats.deliveries if push is not None else 0,
        per_device=per_device_stats(db),
    )


def _device_table(modes: Sequence[StripedMode]) -> str:
    rows = []
    for mode in modes:
        for entry in mode.per_device:
            rows.append([
                mode.label, entry["device"], entry["reads"],
                entry["pages_read"], entry["seeks"],
                f"{entry['busy_time']:.3f}",
            ])
    return format_table(
        ["mode", "device", "requests", "pages", "seeks", "busy (s)"], rows
    )


@dataclass
class StripedPushResult:
    """st-push: the same shared workload, pull vs push, one device count."""

    pull: StripedMode
    push: StripedMode

    @property
    def end_to_end_gain(self) -> float:
        return percent_gain(self.pull.makespan, self.push.makespan)

    @property
    def disk_read_gain(self) -> float:
        return percent_gain(self.pull.pages_read, self.push.pages_read)

    def metrics(self) -> Dict[str, Any]:
        return {
            "device_count": self.pull.device_count,
            "pull": self.pull.metrics(),
            "push": self.push.metrics(),
            "end_to_end_gain_percent": self.end_to_end_gain,
            "disk_read_gain_percent": self.disk_read_gain,
        }

    def render(self) -> str:
        headline = format_table(
            ["mode", "makespan (s)", "qps", "pages", "seeks", "hit ratio",
             "pushed pages"],
            [
                [mode.label, mode.makespan, f"{mode.throughput_qps:.2f}",
                 mode.pages_read, mode.seeks,
                 f"{mode.buffer_hit_ratio:.3f}", mode.pushed_pages]
                for mode in (self.pull, self.push)
            ],
        )
        summary = (
            f"push vs pull at {self.pull.device_count} device(s): "
            f"{self.end_to_end_gain:+.1f} % end-to-end, "
            f"{self.disk_read_gain:+.1f} % pages read"
        )
        return "\n".join([
            headline, "", "Per-device load:",
            _device_table((self.pull, self.push)), "", summary,
        ])


@dataclass
class StripedScalingResult:
    """st-scaling: push-pipeline throughput across device counts."""

    points: Dict[int, StripedMode]

    def speedup(self, device_count: int) -> float:
        """Throughput relative to the smallest configured device count."""
        baseline = self.points[min(self.points)]
        if baseline.throughput_qps == 0:
            return 0.0
        return self.points[device_count].throughput_qps / baseline.throughput_qps

    def metrics(self) -> Dict[str, Any]:
        return {
            str(n): dict(self.points[n].metrics(), speedup=self.speedup(n))
            for n in sorted(self.points)
        }

    def render(self) -> str:
        rows = [
            [n, self.points[n].makespan,
             f"{self.points[n].throughput_qps:.2f}",
             f"{self.speedup(n):.2f}x",
             self.points[n].pages_read, self.points[n].seeks]
            for n in sorted(self.points)
        ]
        table = format_table(
            ["devices", "makespan (s)", "qps", "speedup", "pages", "seeks"],
            rows,
        )
        return "\n".join([
            table, "", "Per-device load:",
            _device_table([self.points[n] for n in sorted(self.points)]),
        ])


def st_push(settings: Optional[ExperimentSettings] = None) -> StripedPushResult:
    """ST-PUSH: pull vs push on the shared workload.

    Respects ``--device-count``/``--stripe-extents``; the stripe unit
    defaults to one prefetch extent so a pushed extent lands on exactly
    one device.
    """
    settings = settings or ExperimentSettings()
    if settings.stripe_extents is None:
        settings = settings.with_(stripe_extents=1)
    pull = _run_striped_mode(
        settings.with_(push_prefetch=False), SharingConfig(enabled=True),
        "SS pull",
    )
    push = _run_striped_mode(
        settings.with_(push_prefetch=True), SharingConfig(enabled=True),
        "SS push",
    )
    return StripedPushResult(pull=pull, push=push)


def st_scaling(
    settings: Optional[ExperimentSettings] = None,
    device_counts: Sequence[int] = (1, 2, 4),
) -> StripedScalingResult:
    """ST-SCALING: push-pipeline throughput vs device count."""
    settings = settings or ExperimentSettings()
    if settings.stripe_extents is None:
        settings = settings.with_(stripe_extents=1)
    points: Dict[int, StripedMode] = {}
    for count in device_counts:
        points[count] = _run_striped_mode(
            settings.with_(device_count=count, push_prefetch=True),
            SharingConfig(enabled=True),
            f"{count} device(s)",
        )
    return StripedScalingResult(points=points)
