"""Memory-budgeted operator experiments (``ag-*`` / ``mj-*``).

Three experiments exercise the operators that *compete with scans for
bufferpool frames* (spillable aggregation, multibuffer hash joins)
inside the paper's multi-scan workloads:

* ``ag-compete`` — Base-vs-SS comparison on a scans-plus-aggregation
  mix: classic range scans (Q1/Q6) interleaved with budgeted
  high-cardinality aggregation (AG18), reporting spill and reservation
  counters next to the paper's headline gains;
* ``ag-mix`` — the same mix under one sharing policy, shaped like
  ``pl-mix`` so ``repro sweep ag-mix --param sharing_policy`` renders
  the three-way policy comparison table over the aggregation scenario;
* ``mj-join`` — multibuffer joins (MJ1/MJ18) among Q6 scans, reporting
  chunk counts and build-side spills.

All spill metrics are read from the workload's per-step operator stats,
so the experiments stay cache/digest-compatible with the runner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.core.config import SharingConfig
from repro.experiments.harness import (
    Comparison,
    ExperimentSettings,
    ModeResult,
    compare_modes,
    run_mode,
)
from repro.metrics.report import format_policy_table, format_table, percent_gain
from repro.workloads.streams import tpch_streams

__all__ = [
    "AggCompeteResult",
    "AggMixResult",
    "JoinResult",
    "ag_compete",
    "ag_mix",
    "collect_operator_stats",
    "mj_join",
]

#: Default scans-plus-aggregation mix: two classic scan templates and
#: the two budgeted aggregations, so budgeted and classic queries fight
#: over the same pool.
AGG_MIX_QUERIES = ("Q1", "Q6", "AG1", "AG18")

#: Default join mix: multibuffer joins among I/O-bound range scans.
JOIN_MIX_QUERIES = ("Q6", "MJ1", "MJ18")

#: The spill/reservation counters surfaced per mode in reports.
SPILL_KEYS = (
    "spill_events",
    "spilled_partitions",
    "spill_pages_written",
    "spill_pages_read",
    "granted_pages",
    "clawed_pages",
    "pressure_events",
)


def collect_operator_stats(mode: ModeResult) -> Dict[str, float]:
    """Summed operator counters over every query of one mode's run."""
    totals: Dict[str, float] = {}
    for stream in mode.workload.streams:
        for query in stream.queries:
            for key, value in query.operator_stats().items():
                totals[key] = totals.get(key, 0) + value
    return totals


def _mix_streams(settings: ExperimentSettings, default_names) -> list:
    names = (
        list(settings.query_names) if settings.query_names
        else list(default_names)
    )
    return tpch_streams(settings.n_streams, seed=settings.seed,
                        query_names=names)


@dataclass
class AggCompeteResult:
    """``ag-compete``: budgeted aggregation vs scans, Base vs SS."""

    comparison: Comparison
    base_stats: Dict[str, float]
    shared_stats: Dict[str, float]
    agg_strategy: str

    def metrics(self) -> Dict[str, Any]:
        base, shared = self.comparison.base, self.comparison.shared
        return {
            "agg_strategy": self.agg_strategy,
            "base_makespan": base.makespan,
            "shared_makespan": shared.makespan,
            "base_pages_read": base.pages_read,
            "shared_pages_read": shared.pages_read,
            "end_to_end_gain_percent": self.comparison.end_to_end_gain,
            "disk_read_gain_percent": self.comparison.disk_read_gain,
            "base_spill": {
                key: self.base_stats.get(key, 0) for key in SPILL_KEYS
            },
            "shared_spill": {
                key: self.shared_stats.get(key, 0) for key in SPILL_KEYS
            },
        }

    def render(self) -> str:
        rows = []
        for label, mode, stats in (
            ("Base", self.comparison.base, self.base_stats),
            ("SS", self.comparison.shared, self.shared_stats),
        ):
            rows.append([
                label,
                mode.makespan,
                mode.pages_read,
                int(stats.get("spill_events", 0)),
                int(stats.get("spill_pages_written", 0)),
                int(stats.get("spill_pages_read", 0)),
                int(stats.get("granted_pages", 0)),
                int(stats.get("clawed_pages", 0)),
            ])
        table = format_table(
            ["mode", "makespan (s)", "pages read", "spills",
             "spill wr", "spill rd", "granted", "clawed"],
            rows,
        )
        gain = percent_gain(
            self.comparison.base.makespan, self.comparison.shared.makespan
        )
        return (
            f"{table}\nagg strategy: {self.agg_strategy}; "
            f"end-to-end gain: {gain:.1f} %"
        )


def ag_compete(
    settings: Optional[ExperimentSettings] = None,
) -> AggCompeteResult:
    """AG-COMPETE: spillable aggregation competing with scans, Base/SS."""
    settings = settings or ExperimentSettings()
    streams = _mix_streams(settings, AGG_MIX_QUERIES)
    comparison = compare_modes(settings, streams=streams)
    return AggCompeteResult(
        comparison=comparison,
        base_stats=collect_operator_stats(comparison.base),
        shared_stats=collect_operator_stats(comparison.shared),
        agg_strategy=settings.agg_strategy,
    )


@dataclass
class AggMixResult:
    """``ag-mix``: the aggregation mix under one sharing policy.

    Metric shape deliberately matches :class:`~repro.experiments.\
policies.PolicyRunResult` (``policy`` + ``makespan`` + …) so the CLI's
    sharing-policy sweep table aggregates ``ag-mix`` grid points exactly
    as it does ``pl-mix`` ones; the spill counters ride along as extra
    keys the table formatter ignores.
    """

    policy: str
    agg_strategy: str
    mode_metrics: Dict[str, Any]
    spill_stats: Dict[str, float]

    def metrics(self) -> Dict[str, Any]:
        merged = dict(self.mode_metrics)
        merged["agg_strategy"] = self.agg_strategy
        for key in SPILL_KEYS:
            merged[key] = self.spill_stats.get(key, 0)
        return merged

    def render(self) -> str:
        table = format_policy_table([self.mode_metrics])
        spill = ", ".join(
            f"{key}={int(self.spill_stats.get(key, 0))}" for key in SPILL_KEYS
        )
        return f"{table}\nspill [{self.agg_strategy}]: {spill}"


def ag_mix(settings: Optional[ExperimentSettings] = None) -> AggMixResult:
    """AG-MIX: scans-plus-aggregation under ``settings.sharing_policy``."""
    settings = settings or ExperimentSettings()
    streams = _mix_streams(settings, AGG_MIX_QUERIES)
    mode = run_mode(
        settings, SharingConfig(), settings.sharing_policy, streams=streams
    )
    return AggMixResult(
        policy=settings.sharing_policy,
        agg_strategy=settings.agg_strategy,
        mode_metrics={
            "policy": settings.sharing_policy,
            "makespan": mode.makespan,
            "pages_read": mode.pages_read,
            "seeks": mode.seeks,
            "hit_percent": 100.0 * mode.workload.buffer_hit_ratio,
            "throttle_waits": mode.throttle_waits,
            "scans_joined": mode.scans_joined,
            "throttle_seconds": mode.workload.throttle_seconds,
        },
        spill_stats=collect_operator_stats(mode),
    )


@dataclass
class JoinResult:
    """``mj-join``: multibuffer hash joins among range scans."""

    policy: str
    makespan: float
    pages_read: int
    join_chunks: float
    build_pages_needed: float
    spill_stats: Dict[str, float]

    def metrics(self) -> Dict[str, Any]:
        merged = {
            "policy": self.policy,
            "makespan": self.makespan,
            "pages_read": self.pages_read,
            "join_chunks": self.join_chunks,
            "build_pages_needed": self.build_pages_needed,
        }
        for key in SPILL_KEYS:
            merged[key] = self.spill_stats.get(key, 0)
        return merged

    def render(self) -> str:
        return format_table(
            ["policy", "makespan (s)", "pages read", "probe passes",
             "build frames", "spills", "spill wr"],
            [[
                self.policy,
                self.makespan,
                self.pages_read,
                int(self.join_chunks),
                int(self.build_pages_needed),
                int(self.spill_stats.get("spill_events", 0)),
                int(self.spill_stats.get("spill_pages_written", 0)),
            ]],
        )


def mj_join(settings: Optional[ExperimentSettings] = None) -> JoinResult:
    """MJ-JOIN: multibuffer joins sharing the pool with range scans."""
    settings = settings or ExperimentSettings()
    streams = _mix_streams(settings, JOIN_MIX_QUERIES)
    mode = run_mode(
        settings, SharingConfig(), settings.sharing_policy, streams=streams
    )
    stats = collect_operator_stats(mode)
    return JoinResult(
        policy=settings.sharing_policy,
        makespan=mode.makespan,
        pages_read=mode.pages_read,
        join_chunks=stats.get("join_chunks", 0),
        build_pages_needed=stats.get("build_pages_needed", 0),
        spill_stats=stats,
    )
