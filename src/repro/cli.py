"""Command-line interface: run any experiment without writing code.

Usage::

    python -m repro list
    python -m repro run e4 --scale 0.35 --streams 5
    python -m repro run-all --jobs 4 --out results.json
    python -m repro sweep a3 --param scale --values 0.1,0.2,0.4
    python -m repro trace e2 --out trace.jsonl
    python -m repro chaos e2 --faults leader-abort --seed 7
    python -m repro chaos --quick
    python -m repro serve-sim steady --quick
    python -m repro serve-sim soak --faults disk-degrade --assert-bounded
    python -m repro cluster-sim steady --quick
    python -m repro cluster-sim scale --replicas 4
    python -m repro bench --out BENCH_kernel.json
    python -m repro quickstart

``run`` executes one experiment (see ``list`` for ids) and prints the
same rows/series the paper's corresponding table or figure reports.
``run-all`` fans the whole battery out over a process pool with
deterministic per-experiment seeds and an on-disk result cache;
``sweep`` does the same for one experiment across a parameter grid.
``trace`` runs one experiment with the structured-event tracer
attached, prints an event summary, and can stream the full trace to a
JSONL file for offline analysis.
``chaos`` runs one experiment under a deterministic fault plan (scan
kills, disk degradation, transient I/O errors, pool pressure) with the
sharing-invariant checker armed; ``--quick`` runs the three builtin
plans as a smoke battery.  Exit 4 means an invariant violation.
``serve-sim`` runs a named service scenario — open/closed arrival
streams pushed through weighted-fair admission queues under the AIMD
MPL controller — through the same cached, deterministic runner as
``run-all``; ``--assert-bounded`` (exit 5 on failure) checks the run
drained and stayed within its concurrency/queue bounds, and
``--faults`` layers a chaos plan on top.
``cluster-sim`` runs a named cluster scenario — a templated
simulated-user load routed over a sharded replica fleet by a
consistent-hash ring, each replica its own admission-controlled
service — through the same cached, deterministic runner.
``bench`` runs the hot-path microbenchmarks (fix-hit, fix-miss, event
dispatch, end-to-end staggered-Q6), writes the machine-normalized
``BENCH_kernel.json`` artifact, and — with ``--check`` — fails (exit 3)
on a >20 % regression against a committed baseline.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List, Optional, Tuple

from repro.experiments.harness import ExperimentSettings
from repro.experiments.registry import (
    REGISTRY,
    UnknownExperimentError,
    all_experiments,
    get,
    render_result,
)
from repro.metrics.report import format_table


def _make_renderer(spec):
    return lambda settings: render_result(spec.execute(settings))


#: Experiment id -> (description, runner returning printable text).
#: A thin view over :mod:`repro.experiments.registry`, kept for
#: backwards compatibility; new code should use the registry directly.
EXPERIMENTS: Dict[str, Tuple[str, object]] = {
    spec.name: (spec.description, _make_renderer(spec))
    for spec in all_experiments()
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Increasing Buffer-Locality for "
                    "Multiple Relational Table Scans through Grouping and "
                    "Throttling' (ICDE 2007)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run = subparsers.add_parser("run", help="run one experiment")
    _add_experiment_args(run)

    run_all = subparsers.add_parser(
        "run-all",
        help="run the whole battery in parallel, with result caching",
    )
    _add_settings_args(run_all)
    _add_runner_args(run_all)
    run_all.add_argument(
        "--only", metavar="IDS", default=None,
        help="comma-separated experiment ids (default: every experiment)",
    )

    sweep = subparsers.add_parser(
        "sweep", help="run one experiment across a parameter grid"
    )
    sweep.add_argument("experiment", help="experiment id (see 'list')")
    _add_settings_args(sweep)
    _add_runner_args(sweep)
    sweep.add_argument("--param", required=True,
                       help="ExperimentSettings field to sweep "
                            "(e.g. scale, n_streams, policy)")
    sweep.add_argument("--values", required=True, metavar="V1,V2,...",
                       help="comma-separated grid values")

    trace = subparsers.add_parser(
        "trace", help="run one experiment with event tracing attached"
    )
    _add_experiment_args(trace)
    trace.add_argument("--out", metavar="FILE", default=None,
                       help="also write the full trace as JSONL to FILE")
    trace.add_argument("--ring", type=int, default=200_000,
                       help="in-memory ring-buffer capacity (events kept "
                            "for the summary)")

    quick = subparsers.add_parser(
        "quickstart", help="base-vs-sharing comparison on a TPC-H mix"
    )
    quick.add_argument("--scale", type=float, default=0.25)
    quick.add_argument("--streams", type=int, default=3)

    chaos = subparsers.add_parser(
        "chaos",
        help="run an experiment under fault injection with the sharing "
             "invariant checker armed",
    )
    chaos.add_argument("experiment", nargs="?", default="e2",
                       help="experiment id (default: e2)")
    _add_settings_args(chaos)
    chaos.add_argument("--quick", action="store_true",
                       help="smoke battery: run the three builtin plans "
                            "(leader abort, disk degradation, pool pressure)")

    serve = subparsers.add_parser(
        "serve-sim",
        help="run admission-controlled service scenarios (open/closed "
             "arrival streams with workload classes and backpressure)",
    )
    serve.add_argument("scenario", nargs="?", default="steady",
                       help="scenario name or comma-separated list "
                            "(default: steady; see --list)")
    serve.add_argument("--list", action="store_true", dest="list_scenarios",
                       help="list scenarios and exit")
    _add_settings_args(serve)
    _add_runner_args(serve)
    serve.add_argument("--quick", action="store_true",
                       help="CI smoke configuration: scale 0.1 (scenario "
                            "horizons shrink proportionally)")
    serve.add_argument("--horizon", type=float, default=None,
                       help="arrival-window override in simulated seconds "
                            "(default: per-scenario, scale-derived)")
    serve.add_argument("--assert-bounded", action="store_true",
                       help="exit 5 unless every run drained, stayed within "
                            "its MPL bound, and kept patience-bounded "
                            "queues under their ceilings")

    cluster = subparsers.add_parser(
        "cluster-sim",
        help="run sharded multi-replica cluster scenarios (consistent-hash "
             "routing over a templated simulated-user load)",
    )
    cluster.add_argument("scenario", nargs="?", default="steady",
                         help="scenario name or comma-separated list "
                              "(default: steady; see --list)")
    cluster.add_argument("--list", action="store_true",
                         dest="list_scenarios",
                         help="list cluster scenarios and exit")
    _add_settings_args(cluster)
    _add_runner_args(cluster)
    cluster.add_argument("--quick", action="store_true",
                         help="CI smoke configuration: scale 0.1 (scenario "
                              "horizons shrink proportionally)")
    cluster.add_argument("--replicas", type=int, default=None,
                         help="replica-fleet size override (scale sweeps "
                              "doubling steps up to this)")
    cluster.add_argument("--users", type=int, default=None,
                         help="simulated user-population override "
                              "(default: one million)")
    cluster.add_argument("--horizon", type=float, default=None,
                         help="arrival-window override in simulated seconds "
                              "(default: per-scenario, scale-derived)")

    bench = subparsers.add_parser(
        "bench",
        help="run the hot-path microbenchmarks; optionally gate against "
             "a committed baseline",
    )
    bench.add_argument("--quick", action="store_true",
                       help="CI configuration: fewer repetitions, same "
                            "workloads (normalized metrics stay comparable)")
    bench.add_argument("--out", metavar="FILE", default=None,
                       help="write the JSON report (e.g. BENCH_kernel.json)")
    bench.add_argument("--check", metavar="BASELINE", default=None,
                       help="compare against a baseline JSON; exit 3 on "
                            "regression")
    bench.add_argument("--tolerance", type=float, default=0.20,
                       help="allowed normalized-metric regression "
                            "(default 0.20 = 20%%); baseline entries with "
                            "their own 'tolerance' key override this")
    bench.add_argument("--only", metavar="NAMES", default=None,
                       help="comma-separated benchmark subset (targeted "
                            "profiling; incompatible with --check)")
    return parser


def _add_settings_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.25,
                        help="database scale factor (1.0 = headline size)")
    parser.add_argument("--streams", type=int, default=5,
                        help="number of concurrent query streams")
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument("--policy", default="priority-lru",
                        help="bufferpool victim policy")
    parser.add_argument("--sharing-policy", default="grouping-throttling",
                        help="scan-sharing strategy: grouping-throttling, "
                             "cooperative, or pbm")
    parser.add_argument("--device-count", type=int, default=1,
                        help="striped spindles backing the tablespace "
                             "(1 = single disk)")
    parser.add_argument("--stripe-extents", type=int, default=None,
                        help="stripe unit in prefetch extents (default: "
                             "the page-granular SystemConfig stripe)")
    parser.add_argument("--push", action="store_true",
                        help="enable the leader-driven push prefetch "
                             "pipeline (default: classic pull)")
    parser.add_argument("--agg-strategy", default="hash",
                        choices=("hash", "sort"),
                        help="spill strategy for memory-budgeted "
                             "aggregation (ag-*/mj-* experiments)")
    parser.add_argument("--faults", metavar="SPEC", default=None,
                        help="fault spec or builtin plan name (e.g. "
                             "'leader-abort' or 'disk-delay:factor=4')")
    parser.add_argument("--sharing", metavar="KEY=VAL,...", default=None,
                        help="SharingConfig overrides for the shared mode "
                             "(e.g. 'distance_threshold_extents=4')")


def _add_experiment_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("experiment", help="experiment id (see 'list')")
    _add_settings_args(parser)


def _add_runner_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (1 = run inline)")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not update the result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory "
                             "(default: $REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="write the consolidated results.json artifact")


def _parse_sharing_overrides(spec: str) -> Tuple[Tuple[str, object], ...]:
    """Parse ``key=value,...`` into typed SharingConfig overrides."""
    import dataclasses

    from repro.core.config import SharingConfig

    field_types = {
        f.name: type(getattr(SharingConfig(), f.name))
        for f in dataclasses.fields(SharingConfig)
    }
    overrides = {}
    for token in spec.split(","):
        token = token.strip()
        if not token:
            continue
        name, sep, raw = token.partition("=")
        name = name.strip()
        if not sep:
            raise SystemExit(
                f"repro: error: malformed --sharing token {token!r} "
                f"(expected key=value)"
            )
        if name not in field_types:
            known = ", ".join(sorted(field_types))
            raise SystemExit(
                f"repro: error: unknown SharingConfig field {name!r} "
                f"(known: {known})"
            )
        kind = field_types[name]
        raw = raw.strip()
        try:
            if kind is bool:
                overrides[name] = raw.lower() in ("1", "true", "yes", "on")
            elif kind is int:
                overrides[name] = int(raw)
            elif kind is float:
                overrides[name] = float(raw)
            else:
                overrides[name] = raw
        except ValueError:
            raise SystemExit(
                f"repro: error: --sharing field {name!r} needs a "
                f"{kind.__name__}, got {raw!r}"
            ) from None
    return tuple(sorted(overrides.items()))


def _settings_from_args(args: argparse.Namespace) -> ExperimentSettings:
    sharing_overrides = None
    if getattr(args, "sharing", None):
        sharing_overrides = _parse_sharing_overrides(args.sharing)
    fault_spec = getattr(args, "faults", None)
    if fault_spec is not None:
        from repro.faults.plan import FaultSpecError, parse_fault_spec

        try:
            parse_fault_spec(fault_spec)  # fail fast with a clean error
        except FaultSpecError as exc:
            raise SystemExit(f"repro: error: bad --faults spec: {exc}")
    sharing_policy = getattr(args, "sharing_policy", "grouping-throttling")
    from repro.core.policy import SHARING_POLICY_NAMES

    if sharing_policy not in SHARING_POLICY_NAMES:
        raise SystemExit(
            f"repro: error: unknown --sharing-policy {sharing_policy!r} "
            f"(known: {', '.join(SHARING_POLICY_NAMES)})"
        )
    device_count = getattr(args, "device_count", 1)
    if device_count < 1:
        raise SystemExit(
            f"repro: error: --device-count must be >= 1, got {device_count}"
        )
    stripe_extents = getattr(args, "stripe_extents", None)
    if stripe_extents is not None and stripe_extents < 1:
        raise SystemExit(
            f"repro: error: --stripe-extents must be >= 1, got {stripe_extents}"
        )
    return ExperimentSettings(
        scale=args.scale, n_streams=args.streams, seed=args.seed,
        policy=args.policy, sharing_policy=sharing_policy,
        device_count=device_count,
        stripe_extents=stripe_extents,
        push_prefetch=bool(getattr(args, "push", False)),
        agg_strategy=getattr(args, "agg_strategy", "hash"),
        sharing_overrides=sharing_overrides,
        fault_spec=fault_spec,
    )


def _cmd_list() -> str:
    rows = [[spec.name, spec.description] for spec in all_experiments()]
    return format_table(["id", "experiment"], rows)


def _cmd_run(args: argparse.Namespace) -> str:
    settings = _settings_from_args(args)
    spec = get(args.experiment)
    header = (
        f"{spec.name.upper()} — {spec.description} "
        f"(scale {args.scale}, {args.streams} streams)"
    )
    return header + "\n" + render_result(spec.execute(settings))


def _suite_report(suite, header: str) -> str:
    rows = [
        [task.label, task.cache, f"{task.elapsed_seconds:.2f}", task.digest[:12]]
        for task in suite.tasks
    ]
    table = format_table(["experiment", "cache", "seconds", "digest"], rows)
    footer = (
        f"{len(suite.tasks)} experiments, {suite.cache_hits} cache hits, "
        f"{suite.wall_seconds:.2f}s wall ({suite.jobs} jobs); "
        f"suite digest {suite.suite_digest()[:12]}"
    )
    return header + "\n" + table + "\n" + footer


def _cmd_run_all(args: argparse.Namespace) -> str:
    from repro.experiments.runner import run_suite
    from repro.metrics.export import write_suite_json

    settings = _settings_from_args(args)
    only = None
    if args.only:
        only = [name.strip() for name in args.only.split(",") if name.strip()]
        for name in only:
            get(name)  # fail fast with one clean error line
    suite = run_suite(
        settings, experiments=only, jobs=args.jobs,
        use_cache=not args.no_cache, cache_dir=args.cache_dir,
    )
    text = _suite_report(
        suite,
        f"RUN-ALL — scale {args.scale}, {args.streams} streams, "
        f"seed {args.seed}",
    )
    if args.out:
        write_suite_json(suite, args.out)
        text += f"\nresults written to {args.out}"
    return text


def _cmd_sweep(args: argparse.Namespace) -> str:
    from repro.experiments.runner import run_sweep
    from repro.metrics.export import write_suite_json

    settings = _settings_from_args(args)
    spec = get(args.experiment)
    values = [token.strip() for token in args.values.split(",") if token.strip()]
    if not values:
        raise SystemExit("repro sweep: error: --values must name at least "
                         "one grid point")
    try:
        suite = run_sweep(
            spec.name, args.param, values, settings, jobs=args.jobs,
            use_cache=not args.no_cache, cache_dir=args.cache_dir,
        )
    except ValueError as exc:
        raise SystemExit(f"repro sweep: error: {exc}")
    parts = [_suite_report(
        suite,
        f"SWEEP {spec.name.upper()} — {args.param} over "
        f"{', '.join(values)} (scale {args.scale}, {args.streams} streams)",
    )]
    for task in suite.tasks:
        parts.append(f"\n--- {task.label} ---\n{task.render}")
    if args.param == "sharing_policy":
        table = _sharing_policy_sweep_table(suite)
        if table:
            parts.append("\n=== sharing-policy comparison ===\n" + table)
    if args.out:
        write_suite_json(suite, args.out)
        parts.append(f"\nresults written to {args.out}")
    return "\n".join(parts)


def _sharing_policy_sweep_table(suite) -> str:
    """One aggregated comparison table for a ``sharing_policy`` sweep.

    Works for any experiment whose metrics look like one policy run
    (``pl-mix``) — grid points missing the expected keys degrade to
    ``-`` cells rather than breaking the sweep output.
    """
    from repro.metrics.report import format_policy_table

    rows = []
    for task in suite.tasks:
        metrics = task.metrics
        if not isinstance(metrics, dict) or "makespan" not in metrics:
            continue
        row = dict(metrics)
        row.setdefault("policy", task.sweep_point.partition("=")[2])
        rows.append(row)
    if not rows:
        return ""
    return format_policy_table(rows)


def _cmd_trace(args: argparse.Namespace) -> str:
    from repro.trace import JsonlSink, RingBufferSink, render_summary, tracing

    settings = _settings_from_args(args)
    spec = get(args.experiment)
    if args.ring < 1:
        raise SystemExit(f"repro trace: error: --ring must be >= 1, got {args.ring}")
    ring = RingBufferSink(capacity=args.ring)
    sinks = [ring]
    if args.out:
        try:
            sinks.append(JsonlSink(args.out))
        except OSError as exc:
            raise SystemExit(
                f"repro trace: error: cannot open --out {args.out!r}: {exc}"
            )
    with tracing(*sinks):
        body = render_result(spec.execute(settings))
    header = (
        f"{spec.name.upper()} — {spec.description} "
        f"(scale {args.scale}, {args.streams} streams, traced)"
    )
    text = header + "\n" + body + "\n\n"
    text += render_summary(ring.events(), total_seen=ring.total_seen)
    if args.out:
        text += f"\ntrace written to {args.out}"
    return text


def _cmd_bench(args: argparse.Namespace) -> int:
    """Run (and optionally gate) the perf microbenchmarks.

    Unlike the other subcommands this returns an exit code directly:
    0 on success, 3 when ``--check`` found a regression.
    """
    from repro.perf.bench import (
        compare_reports, load_report, render_report, run_benchmarks,
        write_report,
    )

    if not 0 < args.tolerance < 1:
        raise SystemExit(
            f"repro bench: error: --tolerance must be in (0, 1), "
            f"got {args.tolerance}"
        )
    only = None
    if args.only:
        if args.check:
            raise SystemExit(
                "repro bench: error: --only cannot be combined with --check "
                "(the gate needs the full battery)"
            )
        only = [name.strip() for name in args.only.split(",") if name.strip()]
    try:
        report = run_benchmarks(quick=args.quick, only=only)
    except ValueError as exc:
        raise SystemExit(f"repro bench: error: {exc}")
    print(render_report(report))
    if args.out:
        write_report(report, args.out)
        print(f"report written to {args.out}")
    if args.check:
        try:
            baseline = load_report(args.check)
        except (OSError, ValueError, KeyError) as exc:
            raise SystemExit(
                f"repro bench: error: cannot load baseline {args.check!r}: {exc}"
            )
        problems = compare_reports(baseline, report,
                                   tolerance=args.tolerance)
        if problems:
            print(f"\nPERF REGRESSION vs {args.check} "
                  f"(tolerance {args.tolerance:.0%}):", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 3
        print(f"\nno regression vs {args.check} "
              f"(tolerance {args.tolerance:.0%})")
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    """Run one experiment under one or more fault plans.

    Returns an exit code directly: 0 when every plan completed with the
    invariant checker silent, 4 when any plan tripped a violation.
    """
    from collections import Counter

    from repro.experiments.registry import metrics_of
    from repro.experiments.runner import metrics_digest
    from repro.faults.invariants import InvariantViolation
    from repro.trace import tracing
    from repro.trace.sinks import TraceSink

    spec = get(args.experiment)
    settings = _settings_from_args(args)
    if args.quick or not args.faults:
        plan_names = ["leader-abort", "disk-degrade", "pool-pressure"]
    else:
        plan_names = [args.faults]

    class KindCounter(TraceSink):
        """Counts (category, kind) pairs without retaining events."""

        def __init__(self) -> None:
            self.counts: Counter = Counter()

        def write(self, event) -> None:
            self.counts[(event.category, event.kind)] += 1

    violations = 0
    for plan in plan_names:
        print(
            f"CHAOS {spec.name.upper()} — plan {plan} "
            f"(scale {args.scale}, {args.streams} streams, seed {args.seed})"
        )
        counter = KindCounter()
        try:
            with tracing(counter):
                result = spec.execute(settings.with_(fault_spec=plan))
        except InvariantViolation as exc:
            violations += 1
            print(f"  INVARIANT VIOLATION: {exc}", file=sys.stderr)
            continue
        digest = metrics_digest(metrics_of(result))
        injected = ", ".join(
            f"{kind}={count}"
            for (category, kind), count in sorted(counter.counts.items())
            if category == "fault" and kind != "invariant"
        ) or "none"
        checks = counter.counts.get(("fault", "invariant"), 0)
        print(f"  metrics digest {digest[:12]}")
        print(f"  faults injected: {injected}")
        print(f"  invariants OK ({checks} checks)")
    return 4 if violations else 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Run one or more service scenarios through the parallel runner.

    Returns an exit code directly: 0 on success, 2 on an unknown
    scenario, 4 on an invariant violation (chaos runs), 5 when
    ``--assert-bounded`` found unbounded behaviour.
    """
    from repro.experiments.runner import ExperimentTask, run_tasks
    from repro.faults.invariants import InvariantViolation
    from repro.metrics.export import write_suite_json
    from repro.service.metrics import bounded_problems
    from repro.service.scenarios import SCENARIOS

    if args.list_scenarios:
        print(format_table(
            ["scenario", "description"], sorted(SCENARIOS.items())
        ))
        return 0
    names = [n.strip() for n in args.scenario.split(",") if n.strip()]
    if not names:
        print("repro serve-sim: error: no scenario named", file=sys.stderr)
        return 2
    for name in names:
        if name not in SCENARIOS:
            print(
                f"repro serve-sim: error: unknown scenario {name!r} "
                f"(known: {', '.join(sorted(SCENARIOS))})",
                file=sys.stderr,
            )
            return 2
    settings = _settings_from_args(args)
    if args.quick:
        settings = settings.with_(scale=0.1)
    if args.horizon is not None:
        if args.horizon <= 0:
            print(
                f"repro serve-sim: error: --horizon must be positive, "
                f"got {args.horizon}",
                file=sys.stderr,
            )
            return 2
        settings = settings.with_(service_horizon=args.horizon)
    tasks = [
        ExperimentTask(experiment=f"sv-{name}", settings=settings)
        for name in names
    ]
    try:
        suite = run_tasks(
            tasks, jobs=args.jobs,
            use_cache=not args.no_cache, cache_dir=args.cache_dir,
        )
    except InvariantViolation as exc:
        print(f"INVARIANT VIOLATION: {exc}", file=sys.stderr)
        return 4
    print(_suite_report(
        suite,
        f"SERVE-SIM — {', '.join(names)} "
        f"(scale {settings.scale}, seed {settings.seed})",
    ))
    for task in suite.tasks:
        print(f"\n--- {task.label} ---\n{task.render}")
    if args.out:
        write_suite_json(suite, args.out)
        print(f"results written to {args.out}")
    if args.assert_bounded:
        problems = []
        for task in suite.tasks:
            problems.extend(bounded_problems(task.label, task.metrics))
        if problems:
            print("\nUNBOUNDED SERVICE BEHAVIOUR:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 5
        print("\nboundedness assertions passed")
    return 0


def _cmd_cluster(args: argparse.Namespace) -> int:
    """Run one or more cluster scenarios through the parallel runner.

    Returns an exit code directly: 0 on success, 2 on an unknown
    scenario or bad argument, 4 on an invariant violation (chaos runs).
    """
    from repro.cluster.scenarios import CLUSTER_SCENARIOS
    from repro.experiments.runner import ExperimentTask, run_tasks
    from repro.faults.invariants import InvariantViolation
    from repro.metrics.export import write_suite_json

    if args.list_scenarios:
        print(format_table(
            ["scenario", "description"], sorted(CLUSTER_SCENARIOS.items())
        ))
        return 0
    names = [n.strip() for n in args.scenario.split(",") if n.strip()]
    if not names:
        print("repro cluster-sim: error: no scenario named", file=sys.stderr)
        return 2
    for name in names:
        if name not in CLUSTER_SCENARIOS:
            print(
                f"repro cluster-sim: error: unknown scenario {name!r} "
                f"(known: {', '.join(sorted(CLUSTER_SCENARIOS))})",
                file=sys.stderr,
            )
            return 2
    settings = _settings_from_args(args)
    if args.quick:
        settings = settings.with_(scale=0.1)
    if args.replicas is not None:
        if args.replicas < 1:
            print(
                f"repro cluster-sim: error: --replicas must be >= 1, "
                f"got {args.replicas}",
                file=sys.stderr,
            )
            return 2
        settings = settings.with_(cluster_replicas=args.replicas)
    if args.users is not None:
        if args.users < 1:
            print(
                f"repro cluster-sim: error: --users must be >= 1, "
                f"got {args.users}",
                file=sys.stderr,
            )
            return 2
        settings = settings.with_(cluster_users=args.users)
    if args.horizon is not None:
        if args.horizon <= 0:
            print(
                f"repro cluster-sim: error: --horizon must be positive, "
                f"got {args.horizon}",
                file=sys.stderr,
            )
            return 2
        settings = settings.with_(service_horizon=args.horizon)
    tasks = [
        ExperimentTask(experiment=f"sv-cluster-{name}", settings=settings)
        for name in names
    ]
    try:
        suite = run_tasks(
            tasks, jobs=args.jobs,
            use_cache=not args.no_cache, cache_dir=args.cache_dir,
        )
    except InvariantViolation as exc:
        print(f"INVARIANT VIOLATION: {exc}", file=sys.stderr)
        return 4
    print(_suite_report(
        suite,
        f"CLUSTER-SIM — {', '.join(names)} "
        f"(scale {settings.scale}, seed {settings.seed})",
    ))
    for task in suite.tasks:
        print(f"\n--- {task.label} ---\n{task.render}")
    if args.out:
        write_suite_json(suite, args.out)
        print(f"results written to {args.out}")
    return 0


def _cmd_quickstart(args: argparse.Namespace) -> str:
    from repro.experiments.harness import compare_modes

    settings = ExperimentSettings(scale=args.scale, n_streams=args.streams)
    comparison = compare_modes(settings)
    rows = [
        ["end-to-end (s)", comparison.base.makespan, comparison.shared.makespan,
         comparison.end_to_end_gain],
        ["pages read", comparison.base.pages_read, comparison.shared.pages_read,
         comparison.disk_read_gain],
        ["disk seeks", comparison.base.seeks, comparison.shared.seeks,
         comparison.disk_seek_gain],
    ]
    return format_table(["metric", "Base", "SS", "gain %"], rows)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "chaos":
        try:
            return _cmd_chaos(args)
        except UnknownExperimentError as exc:
            print(f"repro chaos: error: {exc}", file=sys.stderr)
            return 2
    if args.command == "serve-sim":
        return _cmd_serve(args)
    if args.command == "cluster-sim":
        return _cmd_cluster(args)
    commands = {
        "list": lambda: _cmd_list(),
        "run": lambda: _cmd_run(args),
        "run-all": lambda: _cmd_run_all(args),
        "sweep": lambda: _cmd_sweep(args),
        "trace": lambda: _cmd_trace(args),
        "quickstart": lambda: _cmd_quickstart(args),
    }
    try:
        print(commands[args.command]())
    except UnknownExperimentError as exc:
        print(f"repro {args.command}: error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
