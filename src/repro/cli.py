"""Command-line interface: run any experiment without writing code.

Usage::

    python -m repro list
    python -m repro run e4 --scale 0.35 --streams 5
    python -m repro run a3 --scale 0.2
    python -m repro trace e2 --out trace.jsonl
    python -m repro quickstart

``run`` executes one experiment (see ``list`` for ids) and prints the
same rows/series the paper's corresponding table or figure reports.
``trace`` runs the same experiment with the structured-event tracer
attached, prints an event summary, and can stream the full trace to a
JSONL file for offline analysis.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List, Optional

from repro.experiments import (
    ExperimentSettings,
    ablation_bufferpool_sweep,
    ablation_disk_array,
    ablation_disk_scheduler,
    ablation_fairness_cap,
    ablation_policies,
    ablation_priority,
    ablation_threshold,
    ablation_throttling,
    e1_overhead,
    e2_staggered_q6,
    e3_staggered_q1,
    e4_throughput,
    e5_reads_timeline,
    e6_seeks_timeline,
    e7_per_stream,
    e8_per_query,
    e9_stream_scaling,
)
from repro.metrics.report import format_table


def _render_bufferpool_sweep(settings: ExperimentSettings) -> str:
    comparisons = ablation_bufferpool_sweep(settings)
    rows = [
        [f"{fraction:.0%}", c.base.makespan, c.shared.makespan,
         c.end_to_end_gain, c.disk_read_gain]
        for fraction, c in sorted(comparisons.items())
    ]
    return format_table(
        ["pool", "Base (s)", "SS (s)", "e2e gain %", "read gain %"], rows
    )


def _render_disk_array(settings: ExperimentSettings) -> str:
    comparisons = ablation_disk_array(settings)
    rows = [
        [n, c.base.makespan, c.shared.makespan, c.end_to_end_gain,
         c.disk_read_gain]
        for n, c in sorted(comparisons.items())
    ]
    return format_table(
        ["disks", "Base (s)", "SS (s)", "e2e gain %", "read gain %"], rows
    )


#: Experiment id -> (description, runner returning printable text).
EXPERIMENTS: Dict[str, tuple] = {
    "e1": ("single-stream overhead (paper: < 1 %)",
           lambda s: e1_overhead(s).render()),
    "e2": ("3 staggered I/O-bound queries (Figure-15 analog)",
           lambda s: e2_staggered_q6(s).render()),
    "e3": ("3 staggered CPU-bound queries (Figure-16 analog)",
           lambda s: e3_staggered_q1(s).render()),
    "e4": ("multi-stream throughput gains (Table-1 analog)",
           lambda s: e4_throughput(s).render()),
    "e5": ("disk reads over time (Figure-17 analog)",
           lambda s: e5_reads_timeline(s).render()),
    "e6": ("disk seeks over time (Figure-18 analog)",
           lambda s: e6_seeks_timeline(s).render()),
    "e7": ("per-stream gains (Figure-19 analog)",
           lambda s: e7_per_stream(s).render()),
    "e8": ("per-query gains (Figure-20 analog)",
           lambda s: e8_per_query(s).render()),
    "e9": ("throughput vs number of streams (scalability claim)",
           lambda s: e9_stream_scaling(s).render()),
    "a1": ("ablation: throttling on/off",
           lambda s: ablation_throttling(s).render()),
    "a2": ("ablation: page prioritization on/off",
           lambda s: ablation_priority(s).render()),
    "a3": ("ablation: drift-threshold sweep",
           lambda s: ablation_threshold(s).render()),
    "a4": ("ablation: bufferpool-size sweep", _render_bufferpool_sweep),
    "a5": ("related work: victim-policy comparison",
           lambda s: ablation_policies(s).render()),
    "a6": ("ablation: fairness-cap sweep",
           lambda s: ablation_fairness_cap(s).render()),
    "a7": ("ablation: disk scheduler vs coordination",
           lambda s: ablation_disk_scheduler(s).render()),
    "a9": ("ablation: spindle count vs coordination", _render_disk_array),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Increasing Buffer-Locality for "
                    "Multiple Relational Table Scans through Grouping and "
                    "Throttling' (ICDE 2007)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run = subparsers.add_parser("run", help="run one experiment")
    _add_experiment_args(run)

    trace = subparsers.add_parser(
        "trace", help="run one experiment with event tracing attached"
    )
    _add_experiment_args(trace)
    trace.add_argument("--out", metavar="FILE", default=None,
                       help="also write the full trace as JSONL to FILE")
    trace.add_argument("--ring", type=int, default=200_000,
                       help="in-memory ring-buffer capacity (events kept "
                            "for the summary)")

    quick = subparsers.add_parser(
        "quickstart", help="base-vs-sharing comparison on a TPC-H mix"
    )
    quick.add_argument("--scale", type=float, default=0.25)
    quick.add_argument("--streams", type=int, default=3)
    return parser


def _add_experiment_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("experiment", choices=sorted(EXPERIMENTS),
                        help="experiment id")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="database scale factor (1.0 = headline size)")
    parser.add_argument("--streams", type=int, default=5,
                        help="number of concurrent query streams")
    parser.add_argument("--seed", type=int, default=42, help="workload seed")
    parser.add_argument("--policy", default="priority-lru",
                        help="bufferpool victim policy")


def _cmd_list() -> str:
    rows = [[exp_id, description] for exp_id, (description, _runner)
            in sorted(EXPERIMENTS.items())]
    return format_table(["id", "experiment"], rows)


def _cmd_run(args: argparse.Namespace) -> str:
    settings = ExperimentSettings(
        scale=args.scale, n_streams=args.streams, seed=args.seed,
        policy=args.policy,
    )
    description, runner = EXPERIMENTS[args.experiment]
    header = f"{args.experiment.upper()} — {description} (scale {args.scale}, {args.streams} streams)"
    return header + "\n" + runner(settings)


def _cmd_trace(args: argparse.Namespace) -> str:
    from repro.trace import JsonlSink, RingBufferSink, render_summary, tracing

    settings = ExperimentSettings(
        scale=args.scale, n_streams=args.streams, seed=args.seed,
        policy=args.policy,
    )
    description, runner = EXPERIMENTS[args.experiment]
    if args.ring < 1:
        raise SystemExit(f"repro trace: error: --ring must be >= 1, got {args.ring}")
    ring = RingBufferSink(capacity=args.ring)
    sinks = [ring]
    if args.out:
        try:
            sinks.append(JsonlSink(args.out))
        except OSError as exc:
            raise SystemExit(
                f"repro trace: error: cannot open --out {args.out!r}: {exc}"
            )
    with tracing(*sinks):
        body = runner(settings)
    header = (
        f"{args.experiment.upper()} — {description} "
        f"(scale {args.scale}, {args.streams} streams, traced)"
    )
    text = header + "\n" + body + "\n\n"
    text += render_summary(ring.events(), total_seen=ring.total_seen)
    if args.out:
        text += f"\ntrace written to {args.out}"
    return text


def _cmd_quickstart(args: argparse.Namespace) -> str:
    from repro.experiments.harness import compare_modes

    settings = ExperimentSettings(scale=args.scale, n_streams=args.streams)
    comparison = compare_modes(settings)
    rows = [
        ["end-to-end (s)", comparison.base.makespan, comparison.shared.makespan,
         comparison.end_to_end_gain],
        ["pages read", comparison.base.pages_read, comparison.shared.pages_read,
         comparison.disk_read_gain],
        ["disk seeks", comparison.base.seeks, comparison.shared.seeks,
         comparison.disk_seek_gain],
    ]
    return format_table(["metric", "Base", "SS", "gain %"], rows)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "list":
        print(_cmd_list())
    elif args.command == "run":
        print(_cmd_run(args))
    elif args.command == "trace":
        print(_cmd_trace(args))
    elif args.command == "quickstart":
        print(_cmd_quickstart(args))
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
